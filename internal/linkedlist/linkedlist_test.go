package linkedlist

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/settest"
)

func TestConformance(t *testing.T) {
	for _, name := range []string{
		"ll-async", "ll-coupling", "ll-pugh", "ll-pugh-no", "ll-lazy",
		"ll-lazy-no", "ll-copy", "ll-copy-no", "ll-harris", "ll-harris-opt",
		"ll-michael",
	} {
		settest.RunRegistered(t, name)
	}
}

// sorted walks any list through the public API by probing; instead each
// structural test below uses the concrete type.

func TestLazySortedAfterChurn(t *testing.T) {
	l := NewLazy(core.DefaultConfig())
	churn(l)
	prev := core.Key(0)
	for n := l.head.next.Load(); n.key != tailKey; n = n.next.Load() {
		if n.key <= prev {
			t.Fatalf("order violated: %d after %d", n.key, prev)
		}
		prev = n.key
	}
}

func TestHarrisNoMarkedReachableAtQuiescence(t *testing.T) {
	l := NewHarris(core.DefaultConfig(), false)
	churn(l)
	// harris unlinks marked spans during searches; after a full scan via
	// search for every key, no marked node should remain reachable.
	for k := core.Key(1); k <= 64; k++ {
		l.Search(k)
	}
	for n := l.head.next.Load().n; n != l.tail; {
		ref := n.next.Load()
		if ref.marked {
			t.Fatalf("marked node with key %d still reachable after cleanup scans", n.key)
		}
		n = ref.n
	}
}

func TestHarrisOptLeavesMarkedButFindsAll(t *testing.T) {
	l := NewHarris(core.DefaultConfig(), true)
	for k := core.Key(1); k <= 100; k++ {
		l.Insert(k, core.Value(k))
	}
	for k := core.Key(2); k <= 100; k += 2 {
		l.Remove(k)
	}
	for k := core.Key(1); k <= 100; k++ {
		_, ok := l.Search(k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("search(%d) = %v, want %v", k, ok, want)
		}
	}
}

func TestPughBacklinkRecovery(t *testing.T) {
	l := NewPugh(core.DefaultConfig())
	for k := core.Key(1); k <= 10; k++ {
		l.Insert(k, core.Value(k))
	}
	// Grab the node for key 5, then remove it; its next must point back
	// to a predecessor so stranded parses recover.
	var n5 *pughNode
	for n := l.head.next.Load(); n.key != tailKey; n = n.next.Load() {
		if n.key == 5 {
			n5 = n
		}
	}
	if n5 == nil {
		t.Fatal("node 5 not found")
	}
	l.Remove(5)
	if !n5.deleted.Load() {
		t.Fatal("node 5 not flagged deleted")
	}
	back := n5.next.Load()
	if back.key >= 5 {
		t.Fatalf("deleted node's next points forward (key %d); want back-pointer", back.key)
	}
	// A parse that starts from the stale node must still find key 6.
	curr := n5
	for curr.key < 6 || curr.deleted.Load() {
		curr = curr.next.Load()
	}
	if curr.key != 6 {
		t.Fatalf("recovered parse landed on %d, want 6", curr.key)
	}
}

func TestCopySnapshotImmutable(t *testing.T) {
	l := NewCopy(core.DefaultConfig())
	for k := core.Key(1); k <= 10; k++ {
		l.Insert(k, core.Value(k))
	}
	snap := l.snap.Load()
	l.Insert(11, 11)
	l.Remove(3)
	if len(snap.keys) != 10 {
		t.Fatalf("old snapshot mutated: len %d", len(snap.keys))
	}
	if _, ok := snap.find(3); !ok {
		t.Fatal("old snapshot lost key 3")
	}
}

// TestASCY1SearchDoesNoStores verifies the machine-checkable part of ASCY1
// on the compliant lists: a search performs no stores, CAS, locks, or
// restarts.
func TestASCY1SearchDoesNoStores(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    core.Instrumented
	}{
		{"lazy", NewLazy(core.DefaultConfig())},
		{"pugh", NewPugh(core.DefaultConfig())},
		{"harris-opt", NewHarris(core.DefaultConfig(), true)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for k := core.Key(1); k <= 100; k++ {
				tc.s.Insert(k, 0)
			}
			for k := core.Key(2); k <= 100; k += 3 {
				tc.s.Remove(k)
			}
			ctx := &perf.Ctx{}
			for k := core.Key(1); k <= 120; k++ {
				tc.s.SearchCtx(ctx, k)
			}
			for _, ev := range []perf.Event{perf.EvStore, perf.EvCAS, perf.EvCASFail, perf.EvLock, perf.EvRestart} {
				if n := ctx.Count(ev); n != 0 {
					t.Errorf("ASCY1 violated: search did %d %v", n, ev)
				}
			}
		})
	}
}

// TestASCY3FailedUpdateReadOnly verifies that with ReadOnlyFail, unsuccessful
// updates perform no stores or locks, and that the "-no" variants do.
func TestASCY3FailedUpdateReadOnly(t *testing.T) {
	mk := func(roFail bool) []core.Instrumented {
		cfg := core.DefaultConfig()
		cfg.ReadOnlyFail = roFail
		return []core.Instrumented{NewLazy(cfg), NewPugh(cfg), NewCopy(cfg)}
	}
	prime := func(s core.Set) {
		for k := core.Key(2); k <= 100; k += 2 {
			s.Insert(k, 0)
		}
	}
	for _, s := range mk(true) {
		prime(s)
		ctx := &perf.Ctx{}
		for k := core.Key(2); k <= 100; k += 2 {
			if s.InsertCtx(ctx, k, 0) {
				t.Fatal("duplicate insert succeeded")
			}
		}
		for k := core.Key(1); k <= 99; k += 2 {
			if _, ok := s.RemoveCtx(ctx, k); ok {
				t.Fatal("remove of absent key succeeded")
			}
		}
		if n := ctx.Count(perf.EvLock) + ctx.Count(perf.EvStore) + ctx.Count(perf.EvCAS); n != 0 {
			t.Errorf("%T: ASCY3 violated: failed updates did %d coherence events", s, n)
		}
	}
	for _, s := range mk(false) {
		prime(s)
		ctx := &perf.Ctx{}
		for k := core.Key(2); k <= 100; k += 2 {
			s.InsertCtx(ctx, k, 0)
		}
		if ctx.Count(perf.EvLock) == 0 {
			t.Errorf("%T: -no variant took no locks on failed updates", s)
		}
	}
}

// churn applies a deterministic single-threaded mix followed by a brief
// concurrent mix, leaving the structure in a nontrivial state.
func churn(s core.Set) {
	for k := core.Key(1); k <= 64; k++ {
		s.Insert(k, core.Value(k))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := core.Key(i%64 + 1)
				if (i+w)%2 == 0 {
					s.Insert(k, core.Value(k))
				} else {
					s.Remove(k)
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkLazySearchHit(b *testing.B) {
	l := NewLazy(core.DefaultConfig())
	for k := core.Key(1); k <= 1024; k++ {
		l.Insert(k, core.Value(k))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Search(core.Key(i%1024 + 1))
	}
}

// TestHarrisSearchHelpsCleanup constructs the ASCY1-violation window
// deterministically: a logically deleted (marked) node is planted as if a
// remover had been preempted between its two CASes. The original harris
// search must physically unlink it (stores on the search path); the
// harris-opt search must leave it alone and still answer correctly.
func TestHarrisSearchHelpsCleanup(t *testing.T) {
	plant := func(l *Harris) {
		for k := core.Key(1); k <= 10; k++ {
			l.Insert(k, core.Value(k))
		}
		// Mark node 5 logically deleted without unlinking it —
		// exactly a remover paused between CAS 1 and CAS 2.
		for n := l.head.next.Load().n; n != l.tail; n = n.next.Load().n {
			if n.key == 5 {
				ref := n.next.Load()
				n.next.Store(&lfRef{n: ref.n, marked: true})
				return
			}
		}
		t.Fatal("node 5 not found")
	}

	orig := NewHarris(core.DefaultConfig(), false)
	plant(orig)
	ctx := &perf.Ctx{}
	if _, ok := orig.SearchCtx(ctx, 5); ok {
		t.Fatal("marked node reported found")
	}
	if ctx.Count(perf.EvCleanup) == 0 {
		t.Fatal("harris search did not clean up the marked node (ASCY1 violation not exercised)")
	}
	for n := orig.head.next.Load().n; n != orig.tail; n = n.next.Load().n {
		if n.key == 5 {
			t.Fatal("marked node still reachable after harris search")
		}
	}

	opt := NewHarris(core.DefaultConfig(), true)
	plant(opt)
	ctx = &perf.Ctx{}
	if _, ok := opt.SearchCtx(ctx, 5); ok {
		t.Fatal("marked node reported found by harris-opt")
	}
	if n := ctx.Count(perf.EvCleanup) + ctx.Count(perf.EvCAS) + ctx.Count(perf.EvStore); n != 0 {
		t.Fatalf("harris-opt search performed %d events; ASCY1 requires 0", n)
	}
	// Neighbours remain reachable through the marked node.
	if _, ok := opt.Search(6); !ok {
		t.Fatal("key 6 lost behind a marked node")
	}
}

// TestMichaelSearchUnlinksMarked: same planted window; michael's find must
// unlink the single marked node as it traverses.
func TestMichaelSearchUnlinksMarked(t *testing.T) {
	l := NewMichael(core.DefaultConfig())
	for k := core.Key(1); k <= 10; k++ {
		l.Insert(k, core.Value(k))
	}
	for n := l.head.next.Load().n; n != l.tail; n = n.next.Load().n {
		if n.key == 5 {
			ref := n.next.Load()
			n.next.Store(&lfRef{n: ref.n, marked: true})
		}
	}
	ctx := &perf.Ctx{}
	if _, ok := l.SearchCtx(ctx, 7); !ok {
		t.Fatal("key 7 not found")
	}
	if ctx.Count(perf.EvCleanup) == 0 {
		t.Fatal("michael search did not unlink the marked node")
	}
	for n := l.head.next.Load().n; n != l.tail; n = n.next.Load().n {
		if n.key == 5 {
			t.Fatal("marked node still linked after michael search")
		}
	}
}
