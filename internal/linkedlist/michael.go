package linkedlist

import (
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/ssmem"
)

// Michael is Michael's (SPAA '02) refactoring of the Harris list (Table 1),
// designed for easier memory management: instead of unlinking whole marked
// spans, the traversal unlinks logically deleted nodes one at a time, and
// restarts from the head whenever a CAS fails or an inconsistency is
// observed. It shares the lfNode/lfRef encoding with Harris.
//
// The one-node-at-a-time unlink is exactly what makes Michael's list the
// natural fit for SSMEM recycling (its original purpose): with cfg.Recycle,
// the thread whose CAS detaches a node frees it through the epoch
// allocator, and no span walking is ever needed.
type Michael struct {
	core.OrderedVia
	head, tail *lfNode
	rec        *ssmem.Pool[lfNode]
}

// NewMichael returns an empty Michael list.
func NewMichael(cfg core.Config) *Michael {
	tail := newLFNode(tailKey, 0, nil)
	head := newLFNode(headKey, 0, tail)
	s := &Michael{head: head, tail: tail, rec: newNodePool[lfNode](cfg)}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

// RecycleStats implements core.Recycler.
func (l *Michael) RecycleStats() ssmem.Stats { return ssmem.PoolStats(l.rec) }

// find positions (prev, prevRef, curr) with prev.key < k <= curr.key, curr
// unmarked, unlinking each marked node it encounters. Restarts from the head
// when an unlink CAS fails.
func (l *Michael) find(a *ssmem.Allocator[lfNode], c *perf.Ctx, k core.Key) (prev *lfNode, prevRef *lfRef, curr *lfNode) {
tryAgain:
	for {
		prev = l.head
		prevRef = prev.next.Load()
		curr = prevRef.n
		for curr != l.tail {
			currRef := curr.next.Load()
			if currRef.marked {
				// Unlink the single deleted node before stepping
				// over it; on conflict, restart from the head.
				newRef := &lfRef{n: currRef.n}
				if !prev.next.CompareAndSwap(prevRef, newRef) {
					c.Inc(perf.EvCASFail)
					c.Inc(perf.EvRestart)
					continue tryAgain
				}
				c.Inc(perf.EvCAS)
				c.Inc(perf.EvCleanup)
				ssmem.FreeTo(a, curr) // our CAS detached it
				prevRef = newRef
				curr = currRef.n
				continue
			}
			if curr.key >= k {
				return prev, prevRef, curr
			}
			c.Inc(perf.EvTraverse)
			prev = curr
			prevRef = currRef
			curr = currRef.n
		}
		return prev, prevRef, l.tail
	}
}

// SearchCtx implements core.Instrumented. Note that, as in the original,
// the search path helps unlink and may restart — the ASCY1 violation that
// harris-opt removes.
func (l *Michael) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	return l.searchPinned(a, c, k)
}

// searchPinned is the search body; the caller holds the epoch bracket.
func (l *Michael) searchPinned(a *ssmem.Allocator[lfNode], c *perf.Ctx, k core.Key) (core.Value, bool) {
	_, _, curr := l.find(a, c, k)
	if curr != l.tail && curr.key == k {
		return curr.val, true
	}
	return 0, false
}

// SearchBatch implements core.Batcher: one epoch bracket for the whole
// batch (see Lazy.SearchBatch); helping unlinks free into the held
// allocator as usual.
func (l *Michael) SearchBatch(keys []core.Key, vals []core.Value, found []bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	for i, k := range keys {
		vals[i], found[i] = l.searchPinned(a, nil, k)
	}
}

// InsertCtx implements core.Instrumented.
func (l *Michael) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	var n *lfNode // allocated once, reused across CAS retries
	for {
		c.ParseBegin()
		prev, prevRef, curr := l.find(a, c, k)
		c.ParseEnd()
		if curr != l.tail && curr.key == k {
			ssmem.FreeTo(a, n) // never published
			return false
		}
		if n == nil {
			n = allocLF(a, k, v)
		}
		n.next.Store(&lfRef{n: curr})
		if prev.next.CompareAndSwap(prevRef, &lfRef{n: n}) {
			c.Inc(perf.EvCAS)
			return true
		}
		c.Inc(perf.EvCASFail)
		c.Inc(perf.EvRestart)
	}
}

// RemoveCtx implements core.Instrumented.
func (l *Michael) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	for {
		c.ParseBegin()
		prev, prevRef, curr := l.find(a, c, k)
		c.ParseEnd()
		if curr == l.tail || curr.key != k {
			return 0, false
		}
		currRef := curr.next.Load()
		if currRef.marked {
			c.Inc(perf.EvRestart)
			continue
		}
		if !curr.next.CompareAndSwap(currRef, &lfRef{n: currRef.n, marked: true}) {
			c.Inc(perf.EvCASFail)
			c.Inc(perf.EvRestart)
			continue
		}
		c.Inc(perf.EvCAS)
		val := curr.val // we own the logical delete; read before any free
		if prev.next.CompareAndSwap(prevRef, &lfRef{n: currRef.n}) {
			c.Inc(perf.EvCAS)
			ssmem.FreeTo(a, curr) // our CAS detached it
		} else {
			c.Inc(perf.EvCASFail)
			l.find(a, c, k) // delegate cleanup (and the free) to a fresh traversal
		}
		return val, true
	}
}

// Search looks up k.
func (l *Michael) Search(k core.Key) (core.Value, bool) { return l.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (l *Michael) Insert(k core.Key, v core.Value) bool { return l.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (l *Michael) Remove(k core.Key) (core.Value, bool) { return l.RemoveCtx(nil, k) }

// Size counts unmarked elements. Quiescent use only.
func (l *Michael) Size() int {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	n := 0
	for curr := l.head.next.Load().n; curr != l.tail; {
		ref := curr.next.Load()
		if !ref.marked {
			n++
		}
		curr = ref.n
	}
	return n
}
