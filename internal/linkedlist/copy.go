package linkedlist

import (
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/perf"
)

// cowSnapshot is an immutable sorted array of elements. Readers binary-search
// a snapshot; writers build a new one.
type cowSnapshot struct {
	keys []core.Key
	vals []core.Value
}

func (s *cowSnapshot) find(k core.Key) (int, bool) {
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= k })
	return i, i < len(s.keys) && s.keys[i] == k
}

// Copy is the copy-on-write list (Table 1): updates create a fresh copy of
// the whole structure under a global lock, reads binary-search an immutable
// snapshot. The paper highlights both its strength (serial array accesses
// are extremely cache-friendly — an observation that feeds CLHT's design,
// §5/ASCY1 discussion) and its two limitations: per-update copying cost and
// the global lock bottleneck.
type Copy struct {
	core.OrderedVia
	snap         atomic.Pointer[cowSnapshot]
	lock         locks.TAS
	readOnlyFail bool
}

// NewCopy returns an empty copy-on-write list.
func NewCopy(cfg core.Config) *Copy {
	l := &Copy{readOnlyFail: cfg.ReadOnlyFail}
	l.snap.Store(&cowSnapshot{})
	l.OrderedVia = core.OrderedVia{Ascend: l.ascend}
	return l
}

// SearchCtx implements core.Instrumented.
func (l *Copy) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	s := l.snap.Load()
	c.Add(perf.EvTraverse, uint64(log2ceil(len(s.keys))))
	if i, ok := s.find(k); ok {
		return s.vals[i], true
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (l *Copy) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	if l.readOnlyFail {
		c.ParseBegin()
		_, ok := l.snap.Load().find(k)
		c.ParseEnd()
		if ok {
			return false // ASCY3
		}
	}
	l.lock.Lock()
	c.Inc(perf.EvLock)
	defer l.lock.Unlock()
	s := l.snap.Load()
	i, ok := s.find(k)
	if ok {
		return false
	}
	n := len(s.keys)
	ns := &cowSnapshot{keys: make([]core.Key, n+1), vals: make([]core.Value, n+1)}
	copy(ns.keys, s.keys[:i])
	copy(ns.vals, s.vals[:i])
	ns.keys[i], ns.vals[i] = k, v
	copy(ns.keys[i+1:], s.keys[i:])
	copy(ns.vals[i+1:], s.vals[i:])
	c.Add(perf.EvStore, uint64(n+1)) // the copy is the store cost
	l.snap.Store(ns)
	c.Inc(perf.EvStore)
	return true
}

// RemoveCtx implements core.Instrumented.
func (l *Copy) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	if l.readOnlyFail {
		c.ParseBegin()
		_, ok := l.snap.Load().find(k)
		c.ParseEnd()
		if !ok {
			return 0, false // ASCY3
		}
	}
	l.lock.Lock()
	c.Inc(perf.EvLock)
	defer l.lock.Unlock()
	s := l.snap.Load()
	i, ok := s.find(k)
	if !ok {
		return 0, false
	}
	v := s.vals[i]
	n := len(s.keys)
	ns := &cowSnapshot{keys: make([]core.Key, n-1), vals: make([]core.Value, n-1)}
	copy(ns.keys, s.keys[:i])
	copy(ns.vals, s.vals[:i])
	copy(ns.keys[i:], s.keys[i+1:])
	copy(ns.vals[i:], s.vals[i+1:])
	c.Add(perf.EvStore, uint64(n-1))
	l.snap.Store(ns)
	c.Inc(perf.EvStore)
	return v, true
}

// Search looks up k.
func (l *Copy) Search(k core.Key) (core.Value, bool) { return l.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (l *Copy) Insert(k core.Key, v core.Value) bool { return l.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (l *Copy) Remove(k core.Key) (core.Value, bool) { return l.RemoveCtx(nil, k) }

// Size returns the element count of the current snapshot.
func (l *Copy) Size() int { return len(l.snap.Load().keys) }

func log2ceil(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}
