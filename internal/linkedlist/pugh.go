package linkedlist

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/perf"
)

// pughNode: next and deleted are read optimistically and written under the
// node's lock. A deleted node's next is reversed to point at its predecessor
// (Pugh's back-pointer), so a traversal standing on it steps back to live
// territory and resumes.
type pughNode struct {
	key     core.Key
	val     core.Value
	next    atomic.Pointer[pughNode]
	deleted atomic.Bool
	lock    locks.TAS
}

// Pugh is Pugh's concurrent list (Table 1): operations parse optimistically
// with no synchronization, updates lock and validate the target nodes, and
// removals employ pointer reversal so that a concurrent parse always finds a
// correct path without restarting. Search is identical to the sequential
// algorithm (ASCY1); with ReadOnlyFail, failed updates are read-only (ASCY3).
type Pugh struct {
	core.OrderedVia
	head         *pughNode
	readOnlyFail bool
}

// NewPugh returns an empty Pugh list.
func NewPugh(cfg core.Config) *Pugh {
	tail := &pughNode{key: tailKey}
	head := &pughNode{key: headKey}
	head.next.Store(tail)
	s := &Pugh{head: head, readOnlyFail: cfg.ReadOnlyFail}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

// parse walks to the first node with key >= k. If it lands on a deleted
// node, the reversed next pointer walks it back to the predecessor; keys are
// monotone on the live path, so the walk converges.
func (l *Pugh) parse(c *perf.Ctx, k core.Key) (pred, curr *pughNode) {
	pred = l.head
	curr = pred.next.Load()
	for curr.key < k || curr.deleted.Load() {
		c.Inc(perf.EvTraverse)
		if curr.deleted.Load() {
			// Back-pointer: hop to the predecessor recorded at
			// unlink time and resume from there.
			curr = curr.next.Load()
			continue
		}
		pred = curr
		curr = curr.next.Load()
	}
	return pred, curr
}

// SearchCtx implements core.Instrumented. No stores, waiting, or retries.
func (l *Pugh) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	_, curr := l.parse(c, k)
	if curr.key == k {
		return curr.val, true
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (l *Pugh) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	for {
		c.ParseBegin()
		pred, curr := l.parse(c, k)
		c.ParseEnd()
		if l.readOnlyFail && curr.key == k {
			return false // ASCY3
		}
		pred.lock.Lock()
		c.Inc(perf.EvLock)
		if pred.deleted.Load() || pred.next.Load() != curr {
			pred.lock.Unlock()
			c.Inc(perf.EvParseRestart)
			continue
		}
		if curr.key == k {
			pred.lock.Unlock()
			return false
		}
		n := &pughNode{key: k, val: v}
		n.next.Store(curr)
		pred.next.Store(n)
		c.Inc(perf.EvStore)
		pred.lock.Unlock()
		return true
	}
}

// RemoveCtx implements core.Instrumented.
func (l *Pugh) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	for {
		c.ParseBegin()
		pred, curr := l.parse(c, k)
		c.ParseEnd()
		if l.readOnlyFail && curr.key != k {
			return 0, false // ASCY3
		}
		pred.lock.Lock()
		c.Inc(perf.EvLock)
		if pred.deleted.Load() || pred.next.Load() != curr {
			pred.lock.Unlock()
			c.Inc(perf.EvParseRestart)
			continue
		}
		if curr.key != k {
			pred.lock.Unlock()
			return 0, false
		}
		curr.lock.Lock()
		c.Inc(perf.EvLock)
		// curr cannot be deleted: deletion requires pred's lock, which
		// we hold, and pred.next still points at curr.
		curr.deleted.Store(true)
		c.Inc(perf.EvStore)
		pred.next.Store(curr.next.Load())
		c.Inc(perf.EvStore)
		curr.next.Store(pred) // pointer reversal for stranded parses
		c.Inc(perf.EvStore)
		curr.lock.Unlock()
		pred.lock.Unlock()
		return curr.val, true
	}
}

// Search looks up k.
func (l *Pugh) Search(k core.Key) (core.Value, bool) { return l.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (l *Pugh) Insert(k core.Key, v core.Value) bool { return l.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (l *Pugh) Remove(k core.Key) (core.Value, bool) { return l.RemoveCtx(nil, k) }

// Size counts live elements. Quiescent use only.
func (l *Pugh) Size() int {
	n := 0
	for curr := l.head.next.Load(); curr.key != tailKey; curr = curr.next.Load() {
		if !curr.deleted.Load() {
			n++
		}
	}
	return n
}
