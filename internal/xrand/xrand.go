// Package xrand implements the xorshift128+ pseudo-random generator used by
// the benchmark workload drivers.
//
// The ASCYLIB harness uses a per-thread marsaglia xorshift generator so that
// key selection costs a handful of cycles and never synchronizes between
// threads. This port keeps those properties: each worker owns a State seeded
// deterministically from the worker index, so runs are reproducible and the
// generator itself contributes no coherence traffic.
package xrand

// State is a xorshift128+ generator. Not safe for concurrent use; give each
// worker its own State.
type State struct {
	s0, s1 uint64
}

// New returns a generator seeded from seed. Two distinct seeds yield
// independent-looking streams; seed 0 is remapped to a fixed constant because
// xorshift must not start at the all-zero state.
func New(seed uint64) *State {
	s := &State{}
	s.Seed(seed)
	return s
}

// Seed resets the generator state derived from seed via splitmix64, the
// standard recommended initialization for xorshift generators.
func (s *State) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	s.s0 = splitmix64(&seed)
	s.s1 = splitmix64(&seed)
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *State) Uint64() uint64 {
	x := s.s0
	y := s.s1
	s.s0 = y
	x ^= x << 23
	s.s1 = x ^ y ^ (x >> 17) ^ (y >> 26)
	return s.s1 + y
}

// Uint64n returns a pseudo-random value in [0, n). n must be > 0.
func (s *State) Uint64n(n uint64) uint64 {
	// Multiply-shift range reduction (Lemire); the slight modulo bias of
	// the plain approach is irrelevant for workload generation but this
	// is just as cheap.
	hi, _ := mul64(s.Uint64(), n)
	return hi
}

// Intn returns a pseudo-random int in [0, n). n must be > 0.
func (s *State) Intn(n int) int {
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *State) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}
