package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero seed produced a dead generator")
	}
}

func TestUint64nRange(t *testing.T) {
	f := func(seed uint64, n uint32) bool {
		if n == 0 {
			return true
		}
		s := New(seed)
		for i := 0; i < 50; i++ {
			if s.Uint64n(uint64(n)) >= uint64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniformish(t *testing.T) {
	s := New(7)
	const buckets = 10
	const samples = 100000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(samples) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d: %d samples, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ x, y, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, tc := range cases {
		hi, lo := mul64(tc.x, tc.y)
		if hi != tc.hi || lo != tc.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", tc.x, tc.y, hi, lo, tc.hi, tc.lo)
		}
	}
}
