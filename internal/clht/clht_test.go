package clht

import (
	"sync"
	"testing"
	"testing/quick"
	"unsafe"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/settest"
)

func TestConformance(t *testing.T) {
	settest.RunRegistered(t, "ht-clht-lb")
	settest.RunRegistered(t, "ht-clht-lf")
	// Tiny tables force chains and (for LB) resizes.
	t.Run("tiny-lb", func(t *testing.T) {
		settest.Run(t, true, func() core.Set {
			cfg := core.DefaultConfig()
			cfg.Buckets = 2
			return NewLB(cfg)
		})
	})
	t.Run("tiny-lf", func(t *testing.T) {
		settest.Run(t, true, func() core.Set {
			cfg := core.DefaultConfig()
			cfg.Buckets = 2
			return NewLF(cfg)
		})
	})
}

// TestBucketIsOneCacheLine pins the headline design property: a bucket is
// exactly 64 bytes — 1 concurrency word, 3 keys, 3 values, 1 next pointer.
func TestBucketIsOneCacheLine(t *testing.T) {
	if s := unsafe.Sizeof(bucket{}); s != 64 {
		t.Fatalf("bucket size = %d bytes, want 64", s)
	}
	if entriesPerBucket != 3 {
		t.Fatalf("entriesPerBucket = %d, want 3", entriesPerBucket)
	}
}

// TestSnapshotAlgebra exercises the snapshot_t helpers: version increments on
// every transition, single-slot effect, no cross-slot interference.
func TestSnapshotAlgebra(t *testing.T) {
	var w uint64
	for i := 0; i < entriesPerBucket; i++ {
		if snapState(w, i) != slotFree {
			t.Fatalf("slot %d of zero word not free", i)
		}
	}
	w1 := snapWith(w, 1, slotInserting)
	if snapVersion(w1) != 1 {
		t.Fatalf("version after one transition = %d", snapVersion(w1))
	}
	if snapState(w1, 1) != slotInserting {
		t.Fatal("slot 1 not INSERTING")
	}
	if snapState(w1, 0) != slotFree || snapState(w1, 2) != slotFree {
		t.Fatal("transition leaked into neighbouring slots")
	}
	w2 := snapWith(w1, 1, slotValid)
	if snapVersion(w2) != 2 || snapState(w2, 1) != slotValid {
		t.Fatalf("second transition wrong: v=%d st=%d", snapVersion(w2), snapState(w2, 1))
	}
	// Wrap-around of the 32-bit version.
	wHigh := snapWith(uint64(0xFFFFFFFF), 0, slotValid)
	if snapVersion(wHigh) != 0 {
		t.Fatalf("version wrap: got %d, want 0", snapVersion(wHigh))
	}
	if snapState(wHigh, 0) != slotValid {
		t.Fatal("state lost on version wrap")
	}
}

func TestSnapshotQuick(t *testing.T) {
	f := func(w uint64, slot uint8, st uint8) bool {
		i := int(slot) % entriesPerBucket
		s := uint64(st) % 3
		nw := snapWith(w, i, s)
		if snapState(nw, i) != s {
			return false
		}
		if snapVersion(nw) != snapVersion(w)+1 {
			return false
		}
		for j := 0; j < entriesPerBucket; j++ {
			if j != i && snapState(nw, j) != snapState(w, j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestLBResizeGrows forces chain overflow and checks the table expanded and
// kept every element.
func TestLBResizeGrows(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Buckets = 4
	h := NewLB(cfg)
	before := h.Buckets()
	const n = 1000
	for k := core.Key(1); k <= n; k++ {
		if !h.Insert(k, core.Value(k)) {
			t.Fatalf("insert(%d) failed", k)
		}
	}
	if h.Buckets() <= before {
		t.Fatalf("table did not grow: %d -> %d buckets", before, h.Buckets())
	}
	for k := core.Key(1); k <= n; k++ {
		v, ok := h.Search(k)
		if !ok || v != core.Value(k) {
			t.Fatalf("search(%d) = (%d,%v) after resize", k, v, ok)
		}
	}
	if got := h.Size(); got != n {
		t.Fatalf("size = %d, want %d", got, n)
	}
}

// TestLFNoDuplicateSlots checks the CLHT-LF uniqueness invariant after a
// same-key insert storm: at most one VALID slot holds any key.
func TestLFNoDuplicateSlots(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Buckets = 2 // maximize collisions
	h := NewLF(cfg)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				k := core.Key(i%7 + 1)
				if w%2 == 0 {
					h.Insert(k, core.Value(w))
				} else {
					h.Remove(k)
				}
			}
		}(w)
	}
	wg.Wait()
	seen := map[uint64]int{}
	for i := range h.t.buckets {
		for b := &h.t.buckets[i]; b != nil; b = b.next.Load() {
			s := b.conc.Load()
			for j := 0; j < entriesPerBucket; j++ {
				if snapState(s, j) == slotValid {
					seen[b.key[j].Load()]++
				}
			}
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("key %d occupies %d VALID slots", k, n)
		}
	}
}

// TestASCY3CLHT: failed updates on CLHT-LB perform no locks or stores.
func TestASCY3CLHT(t *testing.T) {
	h := NewLB(core.DefaultConfig())
	for k := core.Key(2); k <= 100; k += 2 {
		h.Insert(k, 0)
	}
	ctx := &perf.Ctx{}
	for k := core.Key(2); k <= 100; k += 2 {
		if h.InsertCtx(ctx, k, 1) {
			t.Fatal("duplicate insert succeeded")
		}
	}
	for k := core.Key(1); k <= 99; k += 2 {
		if _, ok := h.RemoveCtx(ctx, k); ok {
			t.Fatal("remove of absent key succeeded")
		}
	}
	if n := ctx.Count(perf.EvLock) + ctx.Count(perf.EvStore) + ctx.Count(perf.EvCAS); n != 0 {
		t.Errorf("ASCY3 violated: %d coherence events on failed updates", n)
	}
}

func TestLBOverflowChains(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Buckets = 1
	h := NewLB(cfg)
	h.expandThreshold = 1 << 30 // disable resize; force chaining
	const n = 50
	for k := core.Key(1); k <= n; k++ {
		if !h.Insert(k, core.Value(k*3)) {
			t.Fatalf("insert(%d) failed", k)
		}
	}
	if got := h.Size(); got != n {
		t.Fatalf("size = %d, want %d", got, n)
	}
	for k := core.Key(1); k <= n; k++ {
		v, ok := h.Search(k)
		if !ok || v != core.Value(k*3) {
			t.Fatalf("search(%d) = (%d,%v)", k, v, ok)
		}
	}
	for k := core.Key(1); k <= n; k++ {
		if _, ok := h.Remove(k); !ok {
			t.Fatalf("remove(%d) failed", k)
		}
	}
	if got := h.Size(); got != 0 {
		t.Fatalf("size after drain = %d", got)
	}
}
