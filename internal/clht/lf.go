package clht

import (
	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/perf"
)

// Slot states kept in the snapshot_t map bytes.
const (
	slotFree      uint64 = 0 // empty (or rolled back / removed)
	slotInserting uint64 = 1 // owned by an in-flight insert
	slotValid     uint64 = 2 // holds a live key/value pair
)

// snapshot_t (§6.1): the bucket's 8-byte concurrency word viewed as a
// 32-bit version plus an array of per-slot state bytes. Every slot-state
// transition replaces the whole word with a CAS that also increments the
// version, so a transition by one thread invalidates any other thread's
// in-flight CAS on the same bucket — this is exactly how the paper makes
// concurrent in-place insertions appear atomic without locks.
//
// Layout: bits 0..31 version; bits 32+8i..39+8i state of slot i.

func snapVersion(w uint64) uint32 { return uint32(w) }

func snapState(w uint64, i int) uint64 { return (w >> (32 + 8*i)) & 0xFF }

// snapWith returns w with slot i set to st and the version incremented.
func snapWith(w uint64, i int, st uint64) uint64 {
	shift := uint(32 + 8*i)
	w = (w &^ (uint64(0xFF) << shift)) | st<<shift
	return (w &^ 0xFFFFFFFF) | uint64(snapVersion(w)+1)
}

// LF is CLHT-LF (§6.1). The concurrency word is a snapshot_t; searches are
// read-only; inserts acquire a slot by CASing its state byte FREE→INSERTING
// (becoming the slot's exclusive owner), publish the pair, re-verify
// uniqueness against the whole chain, and commit with INSERTING→VALID;
// removes retire a pair with a single VALID→FREE CAS. Any concurrent
// transition in the same bucket bumps the version and fails the CAS, which
// is what makes each transition atomic with respect to the others.
//
// Divergence note: when an insert observes a concurrent same-key insert
// that is ordered first, it defers (restarts); the deferred insert waits on
// the owner's next two stores, so the port is lock-free in practice but, as
// in the tech report's discussion, not wait-free.
type LF struct {
	t *table
}

// NewLF builds a CLHT-LF with cfg.Buckets cache-line buckets. CLHT-LF does
// not resize; overflow links extra cache-line buckets.
func NewLF(cfg core.Config) *LF {
	return &LF{t: newTable(pow2(cfg.Buckets))}
}

// SearchCtx implements core.Instrumented. ASCY1: no stores; the only
// "retry" is a bucket-local rescan when a concurrent transition bumps the
// version mid-validation.
func (h *LF) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	for b := &h.t.buckets[mix(k)&h.t.mask]; b != nil; b = b.next.Load() {
		c.Inc(perf.EvTraverse)
	rescan:
		s := b.conc.Load()
		for i := 0; i < entriesPerBucket; i++ {
			if snapState(s, i) == slotValid && b.key[i].Load() == uint64(k) {
				v := b.val[i].Load()
				if b.conc.Load() != s {
					goto rescan
				}
				return core.Value(v), true
			}
		}
	}
	return 0, false
}

// dupScan walks the whole chain looking for key k in slots other than the
// caller's own (myB, myI). It returns:
//
//	dupValid    — k is VALID somewhere else (its value in dupVal): the
//	              insert must fail;
//	deferFirst  — k is INSERTING in a slot ordered before mine in chain
//	              order: the caller must roll back and retry, deferring
//	              to the chain-order winner so exactly one commits.
//
// An INSERTING duplicate ordered *after* mine cannot be ignored: its owner
// may have scanned before my key became visible and would then commit
// obliviously. Sequential consistency of the key stores guarantees at least
// one of us sees the other, so the earlier-positioned inserter spins until
// the later slot resolves (to VALID k → fail, or anything else → continue).
func (h *LF) dupScan(c *perf.Ctx, k core.Key, myB *bucket, myI int) (dupVal core.Value, dupValid, deferFirst bool) {
	beforeMine := true
	for b := &h.t.buckets[mix(k)&h.t.mask]; b != nil; b = b.next.Load() {
	rescan:
		s := b.conc.Load()
		for i := 0; i < entriesPerBucket; i++ {
			if b == myB && i == myI {
				beforeMine = false
				continue
			}
			st := snapState(s, i)
			if st == slotFree {
				continue
			}
			if b.key[i].Load() != uint64(k) {
				continue
			}
			if st == slotValid {
				v := b.val[i].Load()
				if b.conc.Load() != s {
					goto rescan
				}
				return core.Value(v), true, false
			}
			// INSERTING with (possibly stale) key k.
			if beforeMine {
				return 0, false, true
			}
			// Ordered after mine: wait for the owner's next step,
			// then re-examine this bucket.
			c.Inc(perf.EvWait)
			for spin := 0; ; {
				w := b.conc.Load()
				if snapState(w, i) != slotInserting || b.key[i].Load() != uint64(k) {
					break
				}
				spin = locks.Pause(spin)
			}
			goto rescan
		}
	}
	return 0, false, false
}

// InsertCtx implements core.Instrumented.
func (h *LF) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	_, inserted := h.getOrInsertCtx(c, k, v)
	return inserted
}

// GetOrInsert implements core.GetOrInserter natively: the insert protocol
// already performs the feasibility search and the uniqueness re-check, so
// returning the incumbent's value on failure costs nothing extra.
func (h *LF) GetOrInsert(k core.Key, v core.Value) (core.Value, bool) {
	return h.getOrInsertCtx(nil, k, v)
}

// getOrInsertCtx is the insert protocol (§6.1). It returns the value now
// associated with k and whether this call inserted it.
func (h *LF) getOrInsertCtx(c *perf.Ctx, k core.Key, v core.Value) (core.Value, bool) {
	spin := 0
	for {
		// Phase A: feasibility search (ASCY3) + free-slot hunt.
		if v0, in := h.SearchCtx(c, k); in {
			return v0, false
		}
		var freeB, lastB *bucket
		freeI := -1
		for b := &h.t.buckets[mix(k)&h.t.mask]; b != nil; b = b.next.Load() {
			s := b.conc.Load()
			for i := 0; i < entriesPerBucket && freeI < 0; i++ {
				if snapState(s, i) == slotFree {
					freeB, freeI = b, i
				}
			}
			lastB = b
		}

		var myB *bucket
		var myI int
		if freeI >= 0 {
			// Phase B: acquire the slot with a version-checked CAS.
			myB, myI = freeB, freeI
			s := myB.conc.Load()
			if snapState(s, myI) != slotFree {
				c.Inc(perf.EvRestart)
				continue
			}
			if !myB.conc.CompareAndSwap(s, snapWith(s, myI, slotInserting)) {
				c.Inc(perf.EvCASFail)
				c.Inc(perf.EvRestart)
				spin = locks.Pause(spin)
				continue
			}
			c.Inc(perf.EvCAS)
			// Exclusive owner of the slot: publish the pair.
			myB.key[myI].Store(uint64(k))
			myB.val[myI].Store(uint64(v))
			c.Inc(perf.EvStore)
		} else {
			// Chain full: append a cache-line bucket whose slot 0
			// is pre-owned, then fall into the same commit path.
			nb := &bucket{}
			nb.conc.Store(snapWith(0, 0, slotInserting))
			nb.key[0].Store(uint64(k))
			nb.val[0].Store(uint64(v))
			if !lastB.next.CompareAndSwap(nil, nb) {
				c.Inc(perf.EvCASFail)
				c.Inc(perf.EvRestart)
				continue // someone else appended; rescan the chain
			}
			c.Inc(perf.EvCAS)
			myB, myI = nb, 0
		}

		// Phase C: uniqueness re-check. A same-key insert may have
		// committed (or be in flight) since phase A.
		dupVal, dupValid, deferFirst := h.dupScan(c, k, myB, myI)
		if dupValid || deferFirst {
			h.rollback(c, myB, myI)
			if dupValid {
				return dupVal, false
			}
			c.Inc(perf.EvRestart)
			spin = locks.Pause(spin)
			continue
		}

		// Phase D: commit. Retry the CAS if unrelated slots of the
		// bucket transition under us; our INSERTING state is owned,
		// so only the version can move.
		for {
			w := myB.conc.Load()
			if myB.conc.CompareAndSwap(w, snapWith(w, myI, slotValid)) {
				c.Inc(perf.EvCAS)
				return v, true
			}
			c.Inc(perf.EvCASFail)
		}
	}
}

// ForEach implements core.Iterable: a read-only sweep over the VALID slots.
// It observes each pair at some point during the call, not one atomic
// snapshot, but each yielded pair is individually valid: as in SearchCtx,
// the pair is re-validated against the snapshot_t version after the reads,
// so a concurrent remove+reinsert cannot produce a torn (new-key, old-value)
// pair. The done mask keeps a bucket rescan from yielding a slot twice.
func (h *LF) ForEach(yield func(core.Key, core.Value) bool) {
	for i := range h.t.buckets {
		for b := &h.t.buckets[i]; b != nil; b = b.next.Load() {
			var done [entriesPerBucket]bool
		rescan:
			s := b.conc.Load()
			for j := 0; j < entriesPerBucket; j++ {
				if done[j] || snapState(s, j) != slotValid {
					continue
				}
				k := b.key[j].Load()
				v := b.val[j].Load()
				if b.conc.Load() != s {
					goto rescan
				}
				done[j] = true
				if !yield(core.Key(k), core.Value(v)) {
					return
				}
			}
		}
	}
}

// rollback releases an owned slot without committing it.
func (h *LF) rollback(c *perf.Ctx, b *bucket, i int) {
	b.key[i].Store(0)
	c.Inc(perf.EvStore)
	for {
		w := b.conc.Load()
		if b.conc.CompareAndSwap(w, snapWith(w, i, slotFree)) {
			c.Inc(perf.EvCAS)
			return
		}
		c.Inc(perf.EvCASFail)
	}
}

// RemoveCtx implements core.Instrumented. A single VALID→FREE CAS retires
// the pair; the version bump invalidates concurrent snapshots.
func (h *LF) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	for {
	chain:
		for b := &h.t.buckets[mix(k)&h.t.mask]; b != nil; b = b.next.Load() {
			c.Inc(perf.EvTraverse)
			s := b.conc.Load()
			for i := 0; i < entriesPerBucket; i++ {
				if snapState(s, i) != slotValid || b.key[i].Load() != uint64(k) {
					continue
				}
				v := b.val[i].Load()
				if b.conc.Load() != s {
					c.Inc(perf.EvRestart)
					break chain // re-run the outer loop
				}
				if b.conc.CompareAndSwap(s, snapWith(s, i, slotFree)) {
					c.Inc(perf.EvCAS)
					return core.Value(v), true
				}
				c.Inc(perf.EvCASFail)
				c.Inc(perf.EvRestart)
				break chain
			}
		}
		// Either the chain has no VALID k (fail read-only, ASCY3) or a
		// conflict forced a restart; distinguish via a clean search.
		if _, in := h.SearchCtx(c, k); !in {
			return 0, false
		}
	}
}

// Search looks up k.
func (h *LF) Search(k core.Key) (core.Value, bool) { return h.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (h *LF) Insert(k core.Key, v core.Value) bool { return h.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (h *LF) Remove(k core.Key) (core.Value, bool) { return h.RemoveCtx(nil, k) }

// Size counts VALID slots. Quiescent use only.
func (h *LF) Size() int {
	n := 0
	for i := range h.t.buckets {
		for b := &h.t.buckets[i]; b != nil; b = b.next.Load() {
			s := b.conc.Load()
			for j := 0; j < entriesPerBucket; j++ {
				if snapState(s, j) == slotValid {
					n++
				}
			}
		}
	}
	return n
}
