package clht

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/perf"
)

// LB is CLHT-LB (§6.1): the bucket's concurrency word is a spinlock;
// updates search first (ASCY3), then lock and modify the pair in place.
// Searches never synchronize: they read each pair with the paper's atomic
// snapshot (val, key, val re-check) and complete with no stores (ASCY1).
type LB struct {
	tab          atomic.Pointer[table]
	resizeLock   locks.TAS
	readOnlyFail bool
	// expandThreshold is the chain length (in overflow buckets) that
	// triggers a resize instead of another link.
	expandThreshold int
}

// NewLB builds a CLHT-LB with cfg.Buckets cache-line buckets (power of two).
func NewLB(cfg core.Config) *LB {
	h := &LB{readOnlyFail: cfg.ReadOnlyFail, expandThreshold: 2}
	h.tab.Store(newTable(pow2(cfg.Buckets)))
	return h
}

// lockBucket spins on the bucket's concurrency word.
func lockBucket(b *bucket) {
	for i := 0; ; {
		if b.conc.Load() == 0 && b.conc.CompareAndSwap(0, 1) {
			return
		}
		i = locks.Pause(i)
	}
}

func unlockBucket(b *bucket) { b.conc.Store(0) }

// SearchCtx implements core.Instrumented. The per-pair atomic snapshot is
// the paper's: read val, check key, re-check val.
func (h *LB) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	t := h.tab.Load()
	for b := &t.buckets[mix(k)&t.mask]; b != nil; b = b.next.Load() {
		c.Inc(perf.EvTraverse)
		for i := 0; i < entriesPerBucket; i++ {
			v := b.val[i].Load()
			if b.key[i].Load() == uint64(k) && b.val[i].Load() == v {
				return core.Value(v), true
			}
		}
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (h *LB) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	if h.readOnlyFail {
		// ASCY3: "updates first perform a search to check whether the
		// operation is at all feasible".
		c.ParseBegin()
		_, in := h.SearchCtx(c, k)
		c.ParseEnd()
		if in {
			return false
		}
	}
	for {
		t := h.tab.Load()
		first := &t.buckets[mix(k)&t.mask]
		lockBucket(first)
		c.Inc(perf.EvLock)
		if h.tab.Load() != t {
			unlockBucket(first) // resized under us; retry on the new table
			c.Inc(perf.EvRestart)
			continue
		}
		var freeB *bucket
		freeI := -1
		chainLen := 0
		b := first
		for {
			for i := 0; i < entriesPerBucket; i++ {
				if b.key[i].Load() == uint64(k) {
					unlockBucket(first)
					return false
				}
				if freeI < 0 && b.key[i].Load() == 0 {
					freeB, freeI = b, i
				}
			}
			nxt := b.next.Load()
			if nxt == nil {
				break
			}
			b = nxt
			chainLen++
		}
		if freeI >= 0 {
			// Publish val before key: a concurrent search matches
			// the key only after the value is in place.
			freeB.val[freeI].Store(uint64(v))
			freeB.key[freeI].Store(uint64(k))
			c.Inc(perf.EvStore)
			unlockBucket(first)
			return true
		}
		// Chain full: link a fresh bucket, or resize when the chain is
		// already long ("the operation either links a new bucket by
		// using the next pointer, or resizes the hash table").
		nb := &bucket{}
		nb.val[0].Store(uint64(v))
		nb.key[0].Store(uint64(k))
		b.next.Store(nb)
		c.Inc(perf.EvStore)
		unlockBucket(first)
		if chainLen+1 >= h.expandThreshold {
			h.resize(t)
		}
		return true
	}
}

// RemoveCtx implements core.Instrumented.
func (h *LB) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	if h.readOnlyFail {
		c.ParseBegin()
		_, in := h.SearchCtx(c, k)
		c.ParseEnd()
		if !in {
			return 0, false
		}
	}
	for {
		t := h.tab.Load()
		first := &t.buckets[mix(k)&t.mask]
		lockBucket(first)
		c.Inc(perf.EvLock)
		if h.tab.Load() != t {
			unlockBucket(first)
			c.Inc(perf.EvRestart)
			continue
		}
		for b := first; b != nil; b = b.next.Load() {
			for i := 0; i < entriesPerBucket; i++ {
				if b.key[i].Load() == uint64(k) {
					v := core.Value(b.val[i].Load())
					b.key[i].Store(0) // linearization point for searches
					c.Inc(perf.EvStore)
					unlockBucket(first)
					return v, true
				}
			}
		}
		unlockBucket(first)
		return 0, false
	}
}

// resize doubles the table: it serializes resizers, locks every old bucket
// (quiescing updates), copies all pairs into a fresh table, publishes it,
// and releases the old locks so blocked updaters retry on the new table.
// Searches are never blocked; they linearize on their table-pointer load.
func (h *LB) resize(old *table) {
	h.resizeLock.Lock()
	defer h.resizeLock.Unlock()
	if h.tab.Load() != old {
		return
	}
	for i := range old.buckets {
		lockBucket(&old.buckets[i])
	}
	nt := newTable(len(old.buckets) * 2)
	for i := range old.buckets {
		for b := &old.buckets[i]; b != nil; b = b.next.Load() {
			for s := 0; s < entriesPerBucket; s++ {
				k := b.key[s].Load()
				if k == 0 {
					continue
				}
				h.put(nt, core.Key(k), core.Value(b.val[s].Load()))
			}
		}
	}
	h.tab.Store(nt)
	for i := range old.buckets {
		unlockBucket(&old.buckets[i])
	}
}

// put inserts into a private (not yet published) table.
func (h *LB) put(t *table, k core.Key, v core.Value) {
	b := &t.buckets[mix(k)&t.mask]
	for {
		for i := 0; i < entriesPerBucket; i++ {
			if b.key[i].Load() == 0 {
				b.val[i].Store(uint64(v))
				b.key[i].Store(uint64(k))
				return
			}
		}
		nxt := b.next.Load()
		if nxt == nil {
			nb := &bucket{}
			nb.val[0].Store(uint64(v))
			nb.key[0].Store(uint64(k))
			b.next.Store(nb)
			return
		}
		b = nxt
	}
}

// Search looks up k.
func (h *LB) Search(k core.Key) (core.Value, bool) { return h.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (h *LB) Insert(k core.Key, v core.Value) bool { return h.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (h *LB) Remove(k core.Key) (core.Value, bool) { return h.RemoveCtx(nil, k) }

// Size counts occupied slots. Quiescent use only.
func (h *LB) Size() int {
	t := h.tab.Load()
	n := 0
	for i := range t.buckets {
		for b := &t.buckets[i]; b != nil; b = b.next.Load() {
			for s := 0; s < entriesPerBucket; s++ {
				if b.key[s].Load() != 0 {
					n++
				}
			}
		}
	}
	return n
}

// Buckets reports the current table size (tests observe resizing).
func (h *LB) Buckets() int { return len(h.tab.Load().buckets) }
