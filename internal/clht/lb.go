package clht

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/perf"
)

// LB is CLHT-LB (§6.1): the bucket's concurrency word is a spinlock;
// updates search first (ASCY3), then lock and modify the pair in place.
// Searches never synchronize: they read each pair with the paper's atomic
// snapshot (val, key, val re-check) and complete with no stores (ASCY1).
type LB struct {
	tab          atomic.Pointer[table]
	resizeLock   locks.TAS
	readOnlyFail bool
	// expandThreshold is the chain length (in overflow buckets) that
	// triggers a resize instead of another link.
	expandThreshold int
}

// NewLB builds a CLHT-LB with cfg.Buckets cache-line buckets (power of two).
func NewLB(cfg core.Config) *LB {
	h := &LB{readOnlyFail: cfg.ReadOnlyFail, expandThreshold: 2}
	h.tab.Store(newTable(pow2(cfg.Buckets)))
	return h
}

// lockBucket spins on the bucket's concurrency word.
func lockBucket(b *bucket) {
	for i := 0; ; {
		if b.conc.Load() == 0 && b.conc.CompareAndSwap(0, 1) {
			return
		}
		i = locks.Pause(i)
	}
}

func unlockBucket(b *bucket) { b.conc.Store(0) }

// SearchCtx implements core.Instrumented. The per-pair atomic snapshot is
// the paper's: read val, check key, re-check val. When the re-check fails
// (a concurrent in-place Update replaced the value mid-read), the bucket is
// rescanned rather than skipped — the key is still present, so skipping the
// slot could report a continuously-present key as absent.
func (h *LB) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	t := h.tab.Load()
	for b := &t.buckets[mix(k)&t.mask]; b != nil; b = b.next.Load() {
		c.Inc(perf.EvTraverse)
	rescan:
		for i := 0; i < entriesPerBucket; i++ {
			v := b.val[i].Load()
			if b.key[i].Load() == uint64(k) {
				if b.val[i].Load() != v {
					goto rescan
				}
				return core.Value(v), true
			}
		}
	}
	return 0, false
}

// bucketScan is the result of lockedScan: the locked chain of k's bucket
// with the match and first-free-slot positions. The caller owns first's
// lock and must release it (directly or via installLocked).
type bucketScan struct {
	t        *table
	first    *bucket // locked head of the chain
	matchB   *bucket // bucket holding k, nil if absent
	matchI   int
	freeB    *bucket // first free slot seen, nil if chain full
	freeI    int
	last     *bucket // tail of the chain
	chainLen int     // overflow hops walked
}

// lockedScan locks k's bucket (retrying across resizes) and walks the whole
// chain once, recording where k lives and where a new pair could go. It is
// the single copy of the locked-update protocol that InsertCtx, GetOrInsert,
// and Update all sit on.
func (h *LB) lockedScan(c *perf.Ctx, k core.Key) bucketScan {
	for {
		t := h.tab.Load()
		first := &t.buckets[mix(k)&t.mask]
		lockBucket(first)
		c.Inc(perf.EvLock)
		if h.tab.Load() != t {
			unlockBucket(first) // resized under us; retry on the new table
			c.Inc(perf.EvRestart)
			continue
		}
		sc := bucketScan{t: t, first: first, matchI: -1, freeI: -1}
		b := first
		for {
			for i := 0; i < entriesPerBucket; i++ {
				kk := b.key[i].Load()
				if kk == uint64(k) {
					sc.matchB, sc.matchI = b, i
					return sc
				}
				if sc.freeI < 0 && kk == 0 {
					sc.freeB, sc.freeI = b, i
				}
			}
			nxt := b.next.Load()
			if nxt == nil {
				sc.last = b
				return sc
			}
			b = nxt
			sc.chainLen++
		}
	}
}

// installLocked publishes (k, v) into a scanned chain with no match — into
// the free slot if one was found, else a fresh overflow cache-line bucket —
// then unlocks and resizes if the chain got long ("the operation either
// links a new bucket by using the next pointer, or resizes the hash table").
func (h *LB) installLocked(c *perf.Ctx, sc *bucketScan, k core.Key, v core.Value) {
	if sc.freeI >= 0 {
		// Publish val before key: a concurrent search matches the key
		// only after the value is in place.
		sc.freeB.val[sc.freeI].Store(uint64(v))
		sc.freeB.key[sc.freeI].Store(uint64(k))
		c.Inc(perf.EvStore)
		unlockBucket(sc.first)
		return
	}
	nb := &bucket{}
	nb.val[0].Store(uint64(v))
	nb.key[0].Store(uint64(k))
	sc.last.next.Store(nb)
	c.Inc(perf.EvStore)
	unlockBucket(sc.first)
	if sc.chainLen+1 >= h.expandThreshold {
		h.resize(sc.t)
	}
}

// InsertCtx implements core.Instrumented.
func (h *LB) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	if h.readOnlyFail {
		// ASCY3: "updates first perform a search to check whether the
		// operation is at all feasible".
		c.ParseBegin()
		_, in := h.SearchCtx(c, k)
		c.ParseEnd()
		if in {
			return false
		}
	}
	sc := h.lockedScan(c, k)
	if sc.matchI >= 0 {
		unlockBucket(sc.first)
		return false
	}
	h.installLocked(c, &sc, k, v)
	return true
}

// RemoveCtx implements core.Instrumented.
func (h *LB) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	if h.readOnlyFail {
		c.ParseBegin()
		_, in := h.SearchCtx(c, k)
		c.ParseEnd()
		if !in {
			return 0, false
		}
	}
	for {
		t := h.tab.Load()
		first := &t.buckets[mix(k)&t.mask]
		lockBucket(first)
		c.Inc(perf.EvLock)
		if h.tab.Load() != t {
			unlockBucket(first)
			c.Inc(perf.EvRestart)
			continue
		}
		for b := first; b != nil; b = b.next.Load() {
			for i := 0; i < entriesPerBucket; i++ {
				if b.key[i].Load() == uint64(k) {
					v := core.Value(b.val[i].Load())
					b.key[i].Store(0) // linearization point for searches
					c.Inc(perf.EvStore)
					unlockBucket(first)
					return v, true
				}
			}
		}
		unlockBucket(first)
		return 0, false
	}
}

// resize doubles the table: it serializes resizers, locks every old bucket
// (quiescing updates), copies all pairs into a fresh table, publishes it,
// and releases the old locks so blocked updaters retry on the new table.
// Searches are never blocked; they linearize on their table-pointer load.
func (h *LB) resize(old *table) {
	h.resizeLock.Lock()
	defer h.resizeLock.Unlock()
	if h.tab.Load() != old {
		return
	}
	for i := range old.buckets {
		lockBucket(&old.buckets[i])
	}
	nt := newTable(len(old.buckets) * 2)
	for i := range old.buckets {
		for b := &old.buckets[i]; b != nil; b = b.next.Load() {
			for s := 0; s < entriesPerBucket; s++ {
				k := b.key[s].Load()
				if k == 0 {
					continue
				}
				h.put(nt, core.Key(k), core.Value(b.val[s].Load()))
			}
		}
	}
	h.tab.Store(nt)
	for i := range old.buckets {
		unlockBucket(&old.buckets[i])
	}
}

// put inserts into a private (not yet published) table.
func (h *LB) put(t *table, k core.Key, v core.Value) {
	b := &t.buckets[mix(k)&t.mask]
	for {
		for i := 0; i < entriesPerBucket; i++ {
			if b.key[i].Load() == 0 {
				b.val[i].Store(uint64(v))
				b.key[i].Store(uint64(k))
				return
			}
		}
		nxt := b.next.Load()
		if nxt == nil {
			nb := &bucket{}
			nb.val[0].Store(uint64(v))
			nb.key[0].Store(uint64(k))
			b.next.Store(nb)
			return
		}
		b = nxt
	}
}

// GetOrInsert implements core.GetOrInserter natively: a lock-free search
// fast path (the common hit costs no stores), then a single locked bucket
// pass that re-checks and installs — one pass instead of the fallback's
// search + insert (+ its own re-search).
func (h *LB) GetOrInsert(k core.Key, v core.Value) (core.Value, bool) {
	if v0, in := h.SearchCtx(nil, k); in {
		return v0, false
	}
	sc := h.lockedScan(nil, k)
	if sc.matchI >= 0 {
		v0 := core.Value(sc.matchB.val[sc.matchI].Load())
		unlockBucket(sc.first)
		return v0, false
	}
	h.installLocked(nil, &sc, k, v)
	return v, true
}

// Update implements core.Updater natively: one locked bucket pass applies f
// to the authoritative value and commits the transition in place (value
// overwrite, slot clear, or fresh insert). Atomic against every operation —
// the bucket lock serializes it with updates, and searches see the in-place
// value store through their val/key/val snapshot.
func (h *LB) Update(k core.Key, f core.UpdateFunc) (core.Value, bool) {
	sc := h.lockedScan(nil, k)
	// f is user code and runs under the bucket spin-lock: release the
	// lock even if f panics, so a panicking callback cannot wedge the
	// bucket for every later writer that hashes to it. (The generic
	// fallback's stripe mutex has the same guarantee via defer.)
	locked := true
	defer func() {
		if locked {
			unlockBucket(sc.first)
		}
	}()
	if sc.matchI >= 0 {
		old := core.Value(sc.matchB.val[sc.matchI].Load())
		nv, keep := f(old, true)
		switch {
		case !keep:
			sc.matchB.key[sc.matchI].Store(0) // as RemoveCtx
		case nv != old:
			sc.matchB.val[sc.matchI].Store(uint64(nv))
		}
		locked = false
		unlockBucket(sc.first)
		if !keep {
			return old, false
		}
		return nv, true
	}
	nv, keep := f(0, false)
	if !keep {
		locked = false
		unlockBucket(sc.first)
		return 0, false
	}
	locked = false
	h.installLocked(nil, &sc, k, nv)
	return nv, true
}

// ForEach implements core.Iterable: a read-only sweep over the occupied
// slots. It observes each pair at some point during the call, not one
// atomic snapshot, but each yielded pair is individually valid: every slot
// is read with the paper's val/key/val snapshot (as in SearchCtx), so a
// concurrent remove+slot-reuse cannot produce a torn (old-key, new-value)
// pair — insert publishes val before key, so a stable val re-read pins the
// pair the key belonged to.
func (h *LB) ForEach(yield func(core.Key, core.Value) bool) {
	t := h.tab.Load()
	for i := range t.buckets {
		for b := &t.buckets[i]; b != nil; b = b.next.Load() {
			for s := 0; s < entriesPerBucket; s++ {
				for {
					v := b.val[s].Load()
					kk := b.key[s].Load()
					if kk == 0 {
						break
					}
					if b.val[s].Load() != v {
						continue // torn read; re-snapshot the slot
					}
					if !yield(core.Key(kk), core.Value(v)) {
						return
					}
					break
				}
			}
		}
	}
}

// Search looks up k.
func (h *LB) Search(k core.Key) (core.Value, bool) { return h.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (h *LB) Insert(k core.Key, v core.Value) bool { return h.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (h *LB) Remove(k core.Key) (core.Value, bool) { return h.RemoveCtx(nil, k) }

// Size counts occupied slots. Quiescent use only.
func (h *LB) Size() int {
	t := h.tab.Load()
	n := 0
	for i := range t.buckets {
		for b := &t.buckets[i]; b != nil; b = b.next.Load() {
			for s := 0; s < entriesPerBucket; s++ {
				if b.key[s].Load() != 0 {
					n++
				}
			}
		}
	}
	return n
}

// Buckets reports the current table size (tests observe resizing).
func (h *LB) Buckets() int { return len(h.tab.Load().buckets) }
