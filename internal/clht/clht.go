// Package clht implements CLHT, the Cache-Line Hash Table designed from
// scratch with ASCY in the paper (§6.1), in its lock-based (CLHT-LB) and
// lock-free (CLHT-LF) variants.
//
// CLHT captures the basic idea behind ASCY: avoid cache-line transfers.
// Each bucket is exactly one 64-byte cache line holding eight words:
//
//	[ concurrency | k1 k2 k3 | v1 v2 v3 | next ]
//
// The concurrency word is a lock (LB) or a snapshot_t (LF); the middle six
// words are three in-place key/value pairs; next links overflow buckets.
// Because the cache line is the granularity of coherence, an operation that
// touches only its bucket's line completes with at most one cache-line
// transfer. Key 0 marks an empty slot, which is why the library reserves
// key 0 (workload keys are drawn from [1..2N] as in the paper).
package clht

import (
	"sync/atomic"

	"repro/internal/core"
)

// entriesPerBucket is the paper's three key/value pairs per cache line.
const entriesPerBucket = 3

// bucket is one 64-byte cache line: 1 concurrency word, 3 keys, 3 values,
// 1 next pointer.
type bucket struct {
	conc atomic.Uint64
	key  [entriesPerBucket]atomic.Uint64
	val  [entriesPerBucket]atomic.Uint64
	next atomic.Pointer[bucket]
}

// table is one generation of the bucket array (LB resizing swaps
// generations; LF uses a single fixed generation).
type table struct {
	buckets []bucket
	mask    uint64
}

func newTable(n int) *table {
	return &table{buckets: make([]bucket, n), mask: uint64(n - 1)}
}

// mix spreads key bits before masking, as in internal/hashtable.
func mix(k core.Key) uint64 {
	h := uint64(k) * 0x9E3779B97F4A7C15
	return h ^ h>>29
}

func pow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func init() {
	core.Register(core.Algorithm{
		Name:      "ht-clht-lb",
		Structure: core.HashTable,
		Class:     core.LockBased,
		Desc:      "CLHT-LB: cache-line buckets, in-place updates under a per-bucket lock; at most one line transfer per operation",
		Safe:      true,
		ASCY:      true,
		New:       func(cfg core.Config) core.Set { return NewLB(cfg) },
	})
	core.Register(core.Algorithm{
		Name:      "ht-clht-lf",
		Structure: core.HashTable,
		Class:     core.LockFree,
		Desc:      "CLHT-LF: cache-line buckets with a snapshot_t concurrency word; all slot transitions are single CASes",
		Safe:      true,
		ASCY:      true,
		New:       func(cfg core.Config) core.Set { return NewLF(cfg) },
	})
}
