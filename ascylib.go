// Package ascylib is a Go implementation of ASCYLIB, the concurrent search
// data structure (CSDS) library from
//
//	Tudor David, Rachid Guerraoui, Vasileios Trigonakis.
//	"Asynchronized Concurrency: The Secret to Scaling Concurrent Search
//	Data Structures." ASPLOS 2015.
//
// It provides portably scalable linked lists, hash tables, skip lists, and
// binary search trees — the existing state-of-the-art algorithms of the
// paper's Table 1, the ASCY re-engineered variants (harris-opt, fraser-opt,
// the "-no" ablations, urcu-ssmem), and the two algorithms designed from
// scratch with the ASCY patterns: the cache-line hash table CLHT (lock-based
// and lock-free) and the versioned-ticket-lock tree BST-TK.
//
// All sets share one interface over 64-bit keys and values:
//
//	s := ascylib.MustNew("ht-clht-lb", ascylib.Capacity(1<<16))
//	s.Insert(42, 7)
//	v, ok := s.Search(42)
//	s.Remove(42)
//
// The v2 surface extends every algorithm with Update (atomic
// read-modify-write), GetOrInsert, and ForEach (Extended, via Extend or
// NewExtended) and with ordered scans Range/Min/Max (Ordered, via
// OrderedOf) — natively where the structure supports them, through correct
// generic fallbacks elsewhere; Algorithm.Caps and `ascybench list` report
// which. The generic facade Map[K, V] carries typed integer keys
// (order-preserving, so Range works on signed keys too) and arbitrary
// values on the 64-bit core:
//
//	m := ascylib.MustNewMap[int64, string]("sl-fraser-opt")
//	m.Put(-3, "hello")
//	m.Range(-10, 10, func(k int64, v string) bool { return true })
//
// StringMap[V] is the string-keyed companion (hashing + collision chains
// over the same structures), for callers — such as the memcached-protocol
// server in internal/server, runnable via cmd/ascyserve — whose keys are
// not integers:
//
//	sm := ascylib.MustNewStringMap[[]byte]("ht-clht-lf")
//	sm.Put("user:42", []byte("profile"))
//
// Use Algorithms to enumerate the catalogue, and see DESIGN.md /
// EXPERIMENTS.md for the reproduction of the paper's evaluation.
//
// The ASCY patterns (§5 of the paper), which the compliant implementations
// follow and the instrumentation in internal/perf machine-checks:
//
//	ASCY1: a search involves no waiting, retries, or stores.
//	ASCY2: an update's parse phase stores nothing except for cleanup and
//	       never waits or retries.
//	ASCY3: an update whose parse fails performs no stores at all.
//	ASCY4: a successful update's stores are close in number and region to
//	       the sequential implementation's.
package ascylib

import (
	"repro/internal/core"

	// Register every implementation family with the core registry.
	_ "repro/internal/bst"
	_ "repro/internal/clht"
	_ "repro/internal/hashtable"
	_ "repro/internal/linkedlist"
	_ "repro/internal/skiplist"
)

// Key is a 64-bit element key. Key 0 is reserved; valid keys are
// 1..MaxUint64-2 (the top values serve as sentinels in some structures).
type Key = core.Key

// Value is a 64-bit opaque value word.
type Value = core.Value

// Set is the common search-data-structure interface: Search, Insert, Remove
// (plus a linear-time, quiescent Size).
type Set = core.Set

// Extended is the v2 operation surface: Set plus Update (atomic
// read-modify-write), GetOrInsert, and ForEach. Obtain one for any
// algorithm with NewExtended or Extend; see Capabilities for whether the
// operations are native or served by the generic fallbacks.
type Extended = core.Extended

// Ordered is the sorted-scan surface: Range, Min, Max. The ordered families
// (lists, skip lists, BSTs) implement it natively; OrderedOf serves it for
// the hash tables through a snapshot-and-sort fallback.
type Ordered = core.Ordered

// UpdateFunc is one read-modify-write step for Extended.Update.
type UpdateFunc = core.UpdateFunc

// Algorithm describes one registered implementation.
type Algorithm = core.Algorithm

// Capabilities reports which v2 operations an algorithm implements natively.
type Capabilities = core.Capabilities

// Option configures construction.
type Option = core.Option

// Structure and synchronization classes, re-exported for filtering the
// catalogue.
const (
	LinkedList = core.LinkedList
	HashTable  = core.HashTable
	SkipList   = core.SkipList
	BST        = core.BST
)

// Capacity sets a hash table's (initial) bucket count.
func Capacity(n int) Option { return core.Capacity(n) }

// MaxLevel sets a skip list's maximum tower height.
func MaxLevel(n int) Option { return core.MaxLevel(n) }

// ReadOnlyFail toggles ASCY3 (read-only unsuccessful updates); it is on by
// default and only the "-no" ablation variants disable it internally.
func ReadOnlyFail(b bool) Option { return core.ReadOnlyFail(b) }

// RecycleNodes toggles SSMEM node recycling (ASCY4) in the structures that
// support it — the harris/michael/lazy lists and the fraser/pugh skip
// lists; ht-urcu-ssmem recycles natively. Off by default. See DESIGN.md
// "Allocation discipline (ASCY4 in Go)".
func RecycleNodes(b bool) Option { return core.RecycleNodes(b) }

// RecycleThreshold sets the per-goroutine garbage bound before an SSMEM
// collection pass (<= 0 uses the paper's default of 512 freed locations).
func RecycleThreshold(n int) Option { return core.RecycleThreshold(n) }

// Sharded hash-partitions the key domain across n independent instances of
// the structure — the paper's "hash tables scale because they are already
// sharded" observation applied one level up, so a single hot list or tree
// becomes n cool ones. Each shard is a complete instance with its own locks
// and (with RecycleNodes) its own SSMEM epoch domain; Capacity is a total,
// split across the shards. Point operations keep their per-structure
// semantics; Size/Len and ForEach aggregate; ordering does not survive —
// a sharded structure is never natively Ordered, so Map.Range/Min/Max fall
// back to snapshot-and-sort (NativeOrder reports false). 0 or 1 builds a
// single instance. See also ShardedStringMap for the string-keyed facade.
func Sharded(n int) Option { return core.Shards(n) }

// New constructs the named algorithm. Names are listed by Algorithms; the
// headline ones are "ht-clht-lb", "ht-clht-lf", and "bst-tk".
func New(name string, opts ...Option) (Set, error) { return core.New(name, opts...) }

// MustNew is New, panicking on unknown names.
func MustNew(name string, opts ...Option) Set { return core.MustNew(name, opts...) }

// NewExtended constructs the named algorithm with the full v2 surface:
// native Update/GetOrInsert/ForEach where the implementation has them,
// correct generic fallbacks elsewhere.
func NewExtended(name string, opts ...Option) (Extended, error) {
	return core.NewExtended(name, opts...)
}

// Extend upgrades any Set from this library to the Extended surface. See
// core.Extend for the fallback atomicity contract.
func Extend(s Set) Extended { return core.Extend(s) }

// OrderedOf returns an ordered view of s; native reports whether the
// structure enumerates in key order itself (true for lists, skip lists, and
// BSTs) or the view snapshots and sorts (hash tables).
func OrderedOf(s Set) (o Ordered, native bool) { return core.OrderedOf(s) }

// Algorithms returns the full catalogue (Table 1 plus the ASCY variants and
// new designs), sorted by structure then name.
func Algorithms() []Algorithm { return core.All() }

// ByStructure filters the catalogue by family.
func ByStructure(s core.Structure) []Algorithm { return core.ByStructure(s) }
