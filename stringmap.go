package ascylib

import (
	"math"

	"repro/internal/ssmem"
)

// StringMap is the string-keyed companion of Map: a concurrent map from
// string keys to an arbitrary value type V, backed by any registered
// algorithm. It exists for the wire-facing layers (the memcached-protocol
// server keys by client-supplied strings), and for any caller whose keys do
// not fit an integer type.
//
// Keys are carried onto the 64-bit core by hashing (FNV-1a) and chaining:
// each core entry holds the small slice of (key, value) pairs whose keys
// collide on the hash, stored in Map's generation-tagged value arena. All
// per-key operations are read-modify-writes of that chain through
// Map.Update, so they inherit Map's atomicity contract: atomic against
// everything on algorithms with native Update (see Capabilities), atomic
// against each other elsewhere. With a 64-bit hash, chains are almost
// always a single element.
//
// Because hashing destroys order, StringMap has no Range/Min/Max; ForEach
// enumerates in no particular order. Use Map for ordered typed keys — or
// OrderedStringMap, which swaps the hash for an order-preserving 8-byte
// prefix encoding so string order survives the trip through the core.
type StringMap[V any] struct {
	m *Map[uint64, []strEntry[V]]

	// ordered selects the order-preserving keying mode (see
	// OrderedStringMap): keys are carried onto the core by their big-endian
	// 8-byte prefix instead of FNV-1a, and collision chains (keys sharing a
	// prefix) are kept lexicographically sorted, so the core's Range/Min/Max
	// enumerate true string order.
	ordered bool
}

type strEntry[V any] struct {
	key string
	val V
}

// NewStringMap builds a string-keyed map on the named algorithm. The hash
// tables ("ht-clht-lb", "ht-clht-lf") are the natural backends; any
// registered algorithm works.
func NewStringMap[V any](algo string, opts ...Option) (*StringMap[V], error) {
	m, err := NewMap[uint64, []strEntry[V]](algo, opts...)
	if err != nil {
		return nil, err
	}
	return &StringMap[V]{m: m}, nil
}

// MustNewStringMap is NewStringMap, panicking on error.
func MustNewStringMap[V any](algo string, opts ...Option) *StringMap[V] {
	m, err := NewStringMap[V](algo, opts...)
	if err != nil {
		panic(err)
	}
	return m
}

// hash maps a key onto the core's usable key domain (FNV-1a 64, folded away
// from the two reserved top values). Generic over string and []byte so the
// wire-facing byte paths hash without materializing a string.
func strHash[K ~string | ~[]byte](k K) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime64
	}
	return h % (math.MaxUint64 - 1)
}

// prefixHash is the order-preserving counterpart of strHash: the key's
// first 8 bytes read big-endian (shorter keys are zero-padded on the
// right). It is monotone with respect to lexicographic order — if
// prefixHash(a) < prefixHash(b) then a < b — because the pad byte 0 is <=
// every key byte and validKey-grade keys never contain it. Keys sharing a
// prefix collide onto one core entry, where the chain (kept sorted in
// ordered mode) resolves the tie by full-string comparison. The result is
// clamped below the core's two reserved top keys; the clamp is monotone
// too (everything clamped sorts above everything unclamped, and the
// clamped bucket's chain orders its keys fully).
func prefixHash[K ~string | ~[]byte](k K) uint64 {
	var p uint64
	for i := 0; i < 8; i++ {
		p <<= 8
		if i < len(k) {
			p |= uint64(k[i])
		}
	}
	if p > math.MaxUint64-2 {
		p = math.MaxUint64 - 2
	}
	return p
}

// keyHash routes a key onto the core under the map's keying mode.
func keyHash[K ~string | ~[]byte, V any](m *StringMap[V], k K) uint64 {
	if m.ordered {
		return prefixHash(k)
	}
	return strHash(k)
}

func (m *StringMap[V]) hash(k string) uint64 { return keyHash(m, k) }

// eqKey compares a stored string key with a string or []byte key without
// allocating (the explicit loop sidesteps any conversion).
func eqKey[K ~string | ~[]byte](s string, k K) bool {
	if len(s) != len(k) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != k[i] {
			return false
		}
	}
	return true
}

// cmpKey three-way-compares a stored string key with a string or []byte
// key without allocating, byte-wise (which for these keys is lexicographic
// order): -1 when s < k, 0 when equal, +1 when s > k.
func cmpKey[K ~string | ~[]byte](s string, k K) int {
	n := len(s)
	if len(k) < n {
		n = len(k)
	}
	for i := 0; i < n; i++ {
		if s[i] != k[i] {
			if s[i] < k[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s) < len(k):
		return -1
	case len(s) > len(k):
		return 1
	}
	return 0
}

// getChain is the shared read path: look up the collision chain under the
// precomputed hash h and scan it for k. Split from Get/GetBytes so the
// sharded facade can route and look up with a single hash computation.
func getChain[K ~string | ~[]byte, V any](m *StringMap[V], h uint64, k K) (V, bool) {
	chain, ok := m.m.Get(h)
	if ok {
		for i := range chain {
			if eqKey(chain[i].key, k) {
				return chain[i].val, true
			}
		}
	}
	var zero V
	return zero, false
}

// Get returns the value stored under k.
func (m *StringMap[V]) Get(k string) (V, bool) {
	return getChain(m, keyHash(m, k), k)
}

// GetBytes is Get for a []byte key: the hash runs over the slice and chain
// keys are compared byte-wise, so the read path performs no allocation and
// never materializes a string. It is the wire-facing fast path (the server
// keys every get on bytes still sitting in its connection buffer).
func (m *StringMap[V]) GetBytes(k []byte) (V, bool) {
	return getChain(m, keyHash(m, k), k)
}

// GetBytesHashed is GetBytes under a hash the caller already computed (it
// must be strHash of k, e.g. via HashBytes): batch and routing layers hash
// each key exactly once and look up with the same value.
func (m *StringMap[V]) GetBytesHashed(h uint64, k []byte) (V, bool) {
	return getChain(m, h, k)
}

// HashBytes returns the key hash GetBytesHashed expects — one hash
// computation shared between routing, grouping, and lookup.
func HashBytes(k []byte) uint64 { return strHash(k) }

// HashString is HashBytes for a string key: the same FNV-1a hash every
// string-keyed layer (StringMap chains, shard routing, cluster routing)
// derives its placement from, so a key routes identically whether it arrives
// as a string or as bytes off the wire.
func HashString(k string) uint64 { return strHash(k) }

// chainUpd carries one updateChain call's mutable state in a single heap
// object (see Map's updState for the allocation rationale). The staging
// chain is allocated once per call and reused across speculative
// invocations of the callback: earlier invocations' results are discarded
// by contract, so rewriting the same backing array is safe, and the final
// invocation's array is what gets published.
type chainUpd[K ~string | ~[]byte, V any] struct {
	k          K
	f          func(old V, present bool) (V, bool)
	outV       V
	outPresent bool
	sorted     bool // keep the chain lexicographically sorted (ordered mode)
	scratch    []strEntry[V]
}

func (s *chainUpd[K, V]) step(chain []strEntry[V], _ bool) ([]strEntry[V], bool) {
	k := s.k
	idx := -1
	for i := range chain {
		if len(chain[i].key) == len(k) {
			match := true
			for j := 0; j < len(k); j++ {
				if chain[i].key[j] != k[j] {
					match = false
					break
				}
			}
			if match {
				idx = i
				break
			}
		}
	}
	var old V
	if idx >= 0 {
		old = chain[idx].val
	}
	nv, keep := s.f(old, idx >= 0)
	switch {
	case keep:
		if cap(s.scratch) < len(chain)+1 {
			s.scratch = make([]strEntry[V], 0, len(chain)+1)
		}
		out := append(s.scratch[:0], chain...)
		if idx >= 0 {
			out[idx].val = nv
		} else if s.sorted {
			// Ordered mode: splice the fresh key in at its lexicographic
			// position so the chain enumerates in string order.
			at := len(out)
			for i := range out {
				if cmpKey(out[i].key, k) > 0 {
					at = i
					break
				}
			}
			out = append(out, strEntry[V]{})
			copy(out[at+1:], out[at:])
			out[at] = strEntry[V]{key: string(k), val: nv}
		} else {
			out = append(out, strEntry[V]{key: string(k), val: nv})
		}
		s.scratch = out
		s.outV, s.outPresent = nv, true
		return out, true
	case idx < 0:
		// Removing an absent key: leave the chain as it stands.
		s.outV, s.outPresent = old, false
		return chain, len(chain) > 0
	default:
		if cap(s.scratch) < len(chain)-1 {
			s.scratch = make([]strEntry[V], 0, len(chain)-1)
		}
		out := append(s.scratch[:0], chain[:idx]...)
		out = append(out, chain[idx+1:]...)
		s.scratch = out
		s.outV, s.outPresent = old, false
		return out, len(out) > 0
	}
}

// updateChain is the shared read-modify-write over a collision chain,
// generic over string and []byte keys, under a precomputed hash (see
// getChain). The key is converted to a string only when a fresh entry is
// appended — steady-state mutations of existing keys never materialize one.
func updateChain[K ~string | ~[]byte, V any](m *StringMap[V], h uint64, k K, f func(old V, present bool) (V, bool)) (V, bool) {
	st := chainUpd[K, V]{k: k, f: f, sorted: m.ordered}
	m.m.Update(h, st.step)
	return st.outV, st.outPresent
}

// Update atomically transforms the entry for k: f receives the current
// value (present reports existence) and returns the new value and whether
// the key should remain present. It returns the value after the update and
// the resulting presence (the removed value with false when the update
// removes the entry). Like Map.Update, f must be pure and must not call
// back into the map: it may be invoked more than once, and only the last
// invocation takes effect.
func (m *StringMap[V]) Update(k string, f func(old V, present bool) (V, bool)) (V, bool) {
	return updateChain(m, keyHash(m, k), k, f)
}

// UpdateBytes is Update for a []byte key. The key is copied into a string
// only if the update inserts a fresh entry; updates and removals of
// existing keys run allocation-free with respect to the key.
func (m *StringMap[V]) UpdateBytes(k []byte, f func(old V, present bool) (V, bool)) (V, bool) {
	return updateChain(m, keyHash(m, k), k, f)
}

// putChain, insertChain, getOrInsertChain, and deleteChain are the shared
// bodies of the derived per-key operations, under a precomputed hash — both
// StringMap and ShardedStringMap (which routes on the same hash first) call
// them, so the semantics exist exactly once.

func putChain[V any](m *StringMap[V], h uint64, k string, v V) bool {
	fresh := false
	updateChain(m, h, k, func(_ V, present bool) (V, bool) {
		fresh = !present
		return v, true
	})
	return fresh
}

func insertChain[V any](m *StringMap[V], h uint64, k string, v V) bool {
	if _, ok := getChain(m, h, k); ok {
		return false
	}
	inserted := false
	updateChain(m, h, k, func(old V, present bool) (V, bool) {
		if present {
			inserted = false
			return old, true
		}
		inserted = true
		return v, true
	})
	return inserted
}

func getOrInsertChain[V any](m *StringMap[V], h uint64, k string, v V) (V, bool) {
	if got, ok := getChain(m, h, k); ok {
		return got, false
	}
	got, inserted := v, false
	updateChain(m, h, k, func(old V, present bool) (V, bool) {
		if present {
			got, inserted = old, false
			return old, true
		}
		got, inserted = v, true
		return v, true
	})
	return got, inserted
}

func deleteChain[V any](m *StringMap[V], h uint64, k string) (V, bool) {
	var had bool
	var got V
	updateChain(m, h, k, func(old V, present bool) (V, bool) {
		had, got = present, old
		return old, false
	})
	return got, had
}

// Put stores v under k, replacing any existing value, and reports whether
// the key was fresh.
func (m *StringMap[V]) Put(k string, v V) bool {
	return putChain(m, keyHash(m, k), k, v)
}

// Insert adds (k, v) if k is absent and reports whether it did.
func (m *StringMap[V]) Insert(k string, v V) bool {
	return insertChain(m, keyHash(m, k), k, v)
}

// GetOrInsert returns the existing value for k, or stores and returns v.
func (m *StringMap[V]) GetOrInsert(k string, v V) (V, bool) {
	return getOrInsertChain(m, keyHash(m, k), k, v)
}

// Delete removes k, returning the removed value.
func (m *StringMap[V]) Delete(k string) (V, bool) {
	return deleteChain(m, keyHash(m, k), k)
}

// Len counts the entries. Like Set.Size: linear time, quiescent use.
func (m *StringMap[V]) Len() int {
	n := 0
	m.m.ForEach(func(_ uint64, chain []strEntry[V]) bool {
		n += len(chain)
		return true
	})
	return n
}

// ForEach enumerates entries, in no particular order, until yield returns
// false. Entries deleted concurrently may be skipped.
func (m *StringMap[V]) ForEach(yield func(k string, v V) bool) {
	m.m.ForEach(func(_ uint64, chain []strEntry[V]) bool {
		for i := range chain {
			if !yield(chain[i].key, chain[i].val) {
				return false
			}
		}
		return true
	})
}

// Snapshot enumerates entries through the core's consistent-cut traversal
// (see Map.Snapshot) and reports whether the cut is native. A whole
// collision chain is one core value, so every key in a chain is observed at
// the same instant — a chain can never be half-snapshotted.
func (m *StringMap[V]) Snapshot(yield func(k string, v V) bool) bool {
	return m.m.Snapshot(func(_ uint64, chain []strEntry[V]) bool {
		for i := range chain {
			if !yield(chain[i].key, chain[i].val) {
				return false
			}
		}
		return true
	})
}

// RecycleStats returns the backing structure's SSMEM allocator counters
// (zero without recycling); see Map.RecycleStats.
func (m *StringMap[V]) RecycleStats() ssmem.Stats { return m.m.RecycleStats() }

// NumShards reports how many structure instances back the map: n when built
// with Sharded(n > 1), otherwise 1. (A ShardedStringMap shards the facade
// itself instead; its shards each report 1 here.)
func (m *StringMap[V]) NumShards() int { return m.m.NumShards() }
