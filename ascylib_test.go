package ascylib_test

import (
	"testing"

	ascylib "repro"
)

// TestCatalogueMatchesPaper pins the library's inventory to the paper:
// Table 1's algorithms, the ASCY re-engineered variants, and the two
// from-scratch designs must all be registered.
func TestCatalogueMatchesPaper(t *testing.T) {
	want := []string{
		// Linked lists (Table 1 + harris-opt + ASCY3 ablations).
		"ll-async", "ll-coupling", "ll-pugh", "ll-pugh-no", "ll-lazy",
		"ll-lazy-no", "ll-copy", "ll-copy-no", "ll-harris", "ll-harris-opt", "ll-michael",
		// Hash tables.
		"ht-async", "ht-coupling", "ht-pugh", "ht-pugh-no", "ht-lazy",
		"ht-lazy-no", "ht-copy", "ht-copy-no", "ht-urcu", "ht-urcu-ssmem",
		"ht-java", "ht-java-no", "ht-tbb", "ht-harris",
		"ht-clht-lb", "ht-clht-lf",
		// Skip lists.
		"sl-async", "sl-pugh", "sl-herlihy", "sl-fraser", "sl-fraser-opt",
		// BSTs.
		"bst-async-int", "bst-async-ext", "bst-bronson", "bst-drachsler",
		"bst-ellen", "bst-howley", "bst-natarajan", "bst-tk",
	}
	have := map[string]ascylib.Algorithm{}
	for _, a := range ascylib.Algorithms() {
		have[a.Name] = a
	}
	for _, name := range want {
		if _, ok := have[name]; !ok {
			t.Errorf("catalogue missing %s", name)
		}
	}
	if len(have) != len(want) {
		t.Errorf("catalogue has %d algorithms, inventory lists %d", len(have), len(want))
	}
}

func TestFacadeConstructAndUse(t *testing.T) {
	for _, a := range ascylib.Algorithms() {
		s, err := ascylib.New(a.Name, ascylib.Capacity(64))
		if err != nil {
			t.Fatalf("New(%s): %v", a.Name, err)
		}
		if !s.Insert(10, 100) {
			t.Fatalf("%s: insert failed", a.Name)
		}
		v, ok := s.Search(10)
		if !ok || v != 100 {
			t.Fatalf("%s: search = (%d, %v)", a.Name, v, ok)
		}
		if v, ok := s.Remove(10); !ok || v != 100 {
			t.Fatalf("%s: remove = (%d, %v)", a.Name, v, ok)
		}
		if s.Size() != 0 {
			t.Fatalf("%s: size %d after removal", a.Name, s.Size())
		}
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := ascylib.New("ht-not-real"); err == nil {
		t.Fatal("New on unknown algorithm did not error")
	}
}

func TestNewDesignsAreASCYFlagged(t *testing.T) {
	for _, name := range []string{"ht-clht-lb", "ht-clht-lf", "bst-tk", "ll-harris-opt", "sl-fraser-opt", "ht-urcu-ssmem"} {
		found := false
		for _, a := range ascylib.Algorithms() {
			if a.Name == name {
				found = true
				if !a.ASCY {
					t.Errorf("%s not flagged ASCY-compliant", name)
				}
			}
		}
		if !found {
			t.Errorf("%s missing", name)
		}
	}
}

func TestAsyncBoundsFlaggedUnsafe(t *testing.T) {
	for _, a := range ascylib.Algorithms() {
		isAsync := a.Name == "ll-async" || a.Name == "ht-async" || a.Name == "sl-async" ||
			a.Name == "bst-async-int" || a.Name == "bst-async-ext"
		if isAsync == a.Safe {
			t.Errorf("%s: Safe=%v inconsistent with async status %v", a.Name, a.Safe, isAsync)
		}
	}
}
