package ascylib

import "math"

// OrderedStringMap is StringMap's order-preserving sibling: a concurrent
// map from string keys to V whose enumeration order is true lexicographic
// string order, servable by the core's native Range/Min/Max on ordered
// structures (skip lists, BSTs, lists) and by the snapshot-and-sort
// fallback everywhere else.
//
// Where StringMap keys the 64-bit core with FNV-1a — destroying order —
// OrderedStringMap keys it with the key's big-endian 8-byte prefix
// (prefixHash): prefix order is a monotone coarsening of lexicographic
// order, so the core enumerates buckets in string order, and the collision
// chain of keys sharing an 8-byte prefix is kept lexicographically sorted
// to resolve the ties. Enumerating buckets in core-key order and each
// chain in place therefore yields exactly sorted string order.
//
// The trade: keys are placed by structure, not scattered by hash. On the
// ordered structures this is precisely what makes ranges cheap (a scan is
// a bounded in-order walk); on a hash-table backend, clustered prefixes
// cluster buckets, so hash tables should stay in plain StringMap mode
// unless ordered enumeration is required.
//
// All per-key operations are inherited from StringMap unchanged — same
// chain semantics, same atomicity contract, same zero-allocation byte
// paths.
type OrderedStringMap[V any] struct {
	*StringMap[V]
}

// NewOrderedStringMap builds an order-preserving string-keyed map on the
// named algorithm ("sl-fraser-opt" is the headline choice: native ordered
// enumeration; any registered algorithm works via the ordered fallback).
func NewOrderedStringMap[V any](algo string, opts ...Option) (*OrderedStringMap[V], error) {
	m, err := NewStringMap[V](algo, opts...)
	if err != nil {
		return nil, err
	}
	m.ordered = true
	return &OrderedStringMap[V]{StringMap: m}, nil
}

// MustNewOrderedStringMap is NewOrderedStringMap, panicking on error.
func MustNewOrderedStringMap[V any](algo string, opts ...Option) *OrderedStringMap[V] {
	m, err := NewOrderedStringMap[V](algo, opts...)
	if err != nil {
		panic(err)
	}
	return m
}

// NativeOrder reports whether the backing structure enumerates in key
// order itself; when false, ranges snapshot and sort (O(n log n)).
func (m *OrderedStringMap[V]) NativeOrder() bool { return m.m.NativeOrder() }

// RangeBytes yields the entries with lo <= key <= hi in ascending
// lexicographic order, stopping after limit entries (limit <= 0 means
// unbounded), and returns how many were yielded. A nil hi means no upper
// bound; an empty or nil lo starts from the smallest key. Keys are yielded
// as their stored strings — the scan allocates nothing per entry. An
// inverted range (lo > hi) yields nothing. Entries inserted or deleted
// concurrently may or may not be observed; every yielded entry was present
// at some instant during the scan.
func (m *OrderedStringMap[V]) RangeBytes(lo, hi []byte, limit int, fn func(k string, v V) bool) int {
	return rangeBytes(m.StringMap, lo, hi, limit, fn)
}

// Min returns the lexicographically smallest entry.
func (m *OrderedStringMap[V]) Min() (string, V, bool) { return minEntry(m.StringMap) }

// Max returns the lexicographically largest entry.
func (m *OrderedStringMap[V]) Max() (string, V, bool) { return maxEntry(m.StringMap) }

// rangeBytes is the shared bounded-scan body (OrderedStringMap and the
// ordered ShardedStringMap's per-shard scans both run it). It walks the
// core's bucket range [prefixHash(lo), prefixHash(hi)] in order and
// filters each sorted chain by the full string bounds: only the two
// boundary buckets can contain out-of-range keys, so the filter is almost
// always a no-op, and the first key past hi ends the scan globally
// (enumeration is sorted).
func rangeBytes[V any](m *StringMap[V], lo, hi []byte, limit int, fn func(k string, v V) bool) int {
	var plo uint64
	if len(lo) > 0 {
		plo = prefixHash(lo)
	}
	phi := uint64(math.MaxUint64 - 2)
	if hi != nil {
		phi = prefixHash(hi)
	}
	n := 0
	m.m.Range(plo, phi, func(_ uint64, chain []strEntry[V]) bool {
		for i := range chain {
			if len(lo) > 0 && cmpKey(chain[i].key, lo) < 0 {
				continue
			}
			if hi != nil && cmpKey(chain[i].key, hi) > 0 {
				return false
			}
			if limit > 0 && n >= limit {
				return false
			}
			n++
			if !fn(chain[i].key, chain[i].val) {
				return false
			}
		}
		return true
	})
	return n
}

// minEntry returns the smallest entry of an ordered StringMap: the first
// element of the smallest bucket's sorted chain.
func minEntry[V any](m *StringMap[V]) (string, V, bool) {
	_, chain, ok := m.m.Min()
	if !ok || len(chain) == 0 {
		var zero V
		return "", zero, false
	}
	return chain[0].key, chain[0].val, true
}

// maxEntry returns the largest entry of an ordered StringMap: the last
// element of the largest bucket's sorted chain.
func maxEntry[V any](m *StringMap[V]) (string, V, bool) {
	_, chain, ok := m.m.Max()
	if !ok || len(chain) == 0 {
		var zero V
		return "", zero, false
	}
	return chain[len(chain)-1].key, chain[len(chain)-1].val, true
}
