// memcache: a look-aside cache in the style of Memcached — the deployment
// the paper names as a canonical CSDS use (§1, §7: "concurrent hash tables
// are crucial ... in Memcached"; Fan et al. tripled Memcached throughput by
// fixing exactly this table) — served over the real wire protocol.
//
// Before/after: this example used to simulate the cache in-process — a
// *ascylib.Map in the same address space, no socket anywhere, with the
// look-aside pattern faked by direct method calls. It now does what its
// name says: it boots the repo's actual memcached-protocol server
// (internal/server, CLHT-LF behind it), and the clients dial it over
// loopback TCP and speak the protocol — Get on the hot path, Add to
// resolve racing fills (the first writer wins, exactly the look-aside
// idiom a real Memcached deployment uses), delete to invalidate. The
// numbers it prints are therefore end-to-end: framing, kernel round
// trips, and the concurrent hash table underneath.
//
// Run with: go run ./examples/memcache
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/xrand"
)

// Cache is a look-aside cache over one memcached-protocol connection.
// Each client goroutine owns one (connections are not goroutine-safe,
// as with any memcached client).
type Cache struct {
	c *server.Client

	hits, misses, fills *atomic.Uint64 // shared across clients
}

// Get returns the payload for id, filling from loader on a miss.
// Concurrent fills of the same id race through add: the first writer wins,
// as in a real look-aside cache.
func (c *Cache) Get(id uint64, loader func(uint64) string) (string, error) {
	key := fmt.Sprintf("obj:%d", id)
	if e, ok, err := c.c.Get(key); err != nil {
		return "", err
	} else if ok {
		c.hits.Add(1)
		return string(e.Data), nil
	}
	c.misses.Add(1)
	payload := loader(id)
	stored, err := c.c.Add(key, 0, 0, []byte(payload))
	if err != nil {
		return "", err
	}
	if stored {
		c.fills.Add(1)
		return payload, nil
	}
	// Lost the fill race; the winner's payload is authoritative.
	if e, ok, err := c.c.Get(key); err == nil && ok {
		return string(e.Data), nil
	}
	return payload, nil
}

// Invalidate drops id from the cache (e.g. on a write-through update).
func (c *Cache) Invalidate(id uint64) error {
	_, err := c.c.Delete(fmt.Sprintf("obj:%d", id))
	return err
}

func main() {
	// The real server: CLHT-LF (the paper's lock-free cache-line hash
	// table) behind the memcached text protocol on a loopback port.
	srv, err := server.New(server.Config{Addr: "127.0.0.1:0", Algo: "ht-clht-lf", Capacity: 1 << 15})
	if err != nil {
		panic(err)
	}
	if err := srv.Listen(); err != nil {
		panic(err)
	}
	go srv.Serve()
	defer srv.Close()
	addr := srv.Addr().String()
	fmt.Printf("serving ht-clht-lf behind the memcached protocol on %s\n", addr)

	// The "database": slow to consult.
	var dbReads atomic.Uint64
	loader := func(id uint64) string {
		dbReads.Add(1)
		time.Sleep(10 * time.Microsecond) // simulated backend latency
		return fmt.Sprintf("object-%d", id)
	}

	const clients = 8
	const requests = 25000
	const hotSet = 4096 // ids 1..hotSet take 90% of traffic
	const coldSet = 1 << 20

	var hits, misses, fills atomic.Uint64
	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			conn, err := server.Dial(addr)
			if err != nil {
				panic(err)
			}
			defer conn.Close()
			cache := &Cache{c: conn, hits: &hits, misses: &misses, fills: &fills}
			rng := xrand.New(uint64(cl) + 1)
			for i := 0; i < requests; i++ {
				var id uint64
				if rng.Intn(10) < 9 {
					id = rng.Uint64n(hotSet) + 1
				} else {
					id = rng.Uint64n(coldSet) + 1
				}
				got, err := cache.Get(id, loader)
				if err != nil {
					panic(err)
				}
				if i%1000 == 0 && got == "" {
					panic("empty payload")
				}
				// Occasional invalidation, as after a write.
				if rng.Intn(200) == 0 {
					if err := cache.Invalidate(id); err != nil {
						panic(err)
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := float64(clients * requests)
	fmt.Printf("requests: %.0f in %v (%.2f Mreq/s, over the wire)\n", total, elapsed, total/elapsed.Seconds()/1e6)
	fmt.Printf("cache hits: %d (%.1f%%), misses: %d, fills: %d, backend reads: %d\n",
		hits.Load(), 100*float64(hits.Load())/total,
		misses.Load(), fills.Load(), dbReads.Load())
	st := srv.StatsMap()
	fmt.Printf("server: cmd_get=%s get_hits=%s get_misses=%s curr_items=%s bytes_read=%s\n",
		st["cmd_get"], st["get_hits"], st["get_misses"], st["curr_items"], st["bytes_read"])
}
