// memcache: a sharded look-aside cache in the style of Memcached, whose hash
// table the paper names as a canonical CSDS deployment (§1, §7: "concurrent
// hash tables are crucial ... in Memcached"; Fan et al. tripled Memcached
// throughput by fixing exactly this table).
//
// Built on the typed facade ascylib.Map[uint64, string] over CLHT-LF, the
// paper's lock-free cache-line hash table. The version-stamped entry array
// this example used to hand-roll is gone: string payloads live in the
// facade's generation-tagged value arena, and racing fills resolve through
// the v2 GetOrInsert — native on CLHT, one bucket pass — instead of an
// insert-and-drop dance.
//
// Run with: go run ./examples/memcache
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	ascylib "repro"

	"repro/internal/xrand"
)

// Cache is a look-aside cache over CLHT-LF.
type Cache struct {
	m *ascylib.Map[uint64, string]

	hits, misses, fills atomic.Uint64
}

// NewCache builds a cache with the given power-of-two capacity.
func NewCache(capacity int) *Cache {
	return &Cache{m: ascylib.MustNewMap[uint64, string]("ht-clht-lf", ascylib.Capacity(capacity))}
}

// Get returns the cached payload for id, filling from loader on a miss.
// Concurrent fills of the same id race through GetOrInsert: the first
// writer wins, as in a real look-aside cache.
func (c *Cache) Get(id uint64, loader func(uint64) string) string {
	if v, ok := c.m.Get(id); ok {
		c.hits.Add(1)
		return v
	}
	c.misses.Add(1)
	payload, inserted := c.m.GetOrInsert(id, loader(id))
	if inserted {
		c.fills.Add(1)
	}
	return payload
}

// Invalidate drops id from the cache (e.g. on a write-through update).
func (c *Cache) Invalidate(id uint64) bool {
	_, ok := c.m.Delete(id)
	return ok
}

func main() {
	cache := NewCache(1 << 15)

	// The "database": slow to consult.
	var dbReads atomic.Uint64
	loader := func(id uint64) string {
		dbReads.Add(1)
		time.Sleep(10 * time.Microsecond) // simulated backend latency
		return fmt.Sprintf("object-%d", id)
	}

	const clients = 8
	const requests = 50000
	const hotSet = 4096 // ids 1..hotSet take 90% of traffic
	const coldSet = 1 << 20

	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := xrand.New(uint64(cl) + 1)
			for i := 0; i < requests; i++ {
				var id uint64
				if rng.Intn(10) < 9 {
					id = rng.Uint64n(hotSet) + 1
				} else {
					id = rng.Uint64n(coldSet) + 1
				}
				got := cache.Get(id, loader)
				if i%1000 == 0 && got == "" {
					panic("empty payload")
				}
				// Occasional invalidation, as after a write.
				if rng.Intn(200) == 0 {
					cache.Invalidate(id)
				}
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := float64(clients * requests)
	fmt.Printf("requests: %.0f in %v (%.2f Mreq/s)\n", total, elapsed, total/elapsed.Seconds()/1e6)
	fmt.Printf("cache hits: %d (%.1f%%), misses: %d, fills: %d, backend reads: %d\n",
		cache.hits.Load(), 100*float64(cache.hits.Load())/total,
		cache.misses.Load(), cache.fills.Load(), dbReads.Load())
	fmt.Printf("cached objects at quiescence: %d\n", cache.m.Len())
}
