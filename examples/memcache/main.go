// memcache: a sharded look-aside cache in the style of Memcached, whose hash
// table the paper names as a canonical CSDS deployment (§1, §7: "concurrent
// hash tables are crucial ... in Memcached"; Fan et al. tripled Memcached
// throughput by fixing exactly this table).
//
// The cache maps 64-bit object ids to version-stamped entries in CLHT-LF,
// the paper's lock-free cache-line hash table, and measures a hot-set GET
// workload with misses filled from a slow "backing store" — the classic
// look-aside pattern.
//
// Run with: go run ./examples/memcache
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	ascylib "repro"

	"repro/internal/xrand"
)

// Cache is a fixed-capacity look-aside cache over CLHT-LF.
type Cache struct {
	table ascylib.Set
	// entries is the value arena: the set's 64-bit values index it.
	entries []atomic.Pointer[entry]
	nextIdx atomic.Uint64
	mask    uint64

	hits, misses, fills atomic.Uint64
}

type entry struct {
	id      uint64
	payload string
}

// NewCache builds a cache with the given power-of-two capacity.
func NewCache(capacity int) *Cache {
	return &Cache{
		table:   ascylib.MustNew("ht-clht-lf", ascylib.Capacity(capacity)),
		entries: make([]atomic.Pointer[entry], 2*capacity),
		mask:    uint64(2*capacity - 1),
	}
}

// Get returns the cached payload for id, filling from loader on a miss.
func (c *Cache) Get(id uint64, loader func(uint64) string) string {
	if slot, ok := c.table.Search(ascylib.Key(id)); ok {
		if e := c.entries[uint64(slot)&c.mask].Load(); e != nil && e.id == id {
			c.hits.Add(1)
			return e.payload
		}
	}
	c.misses.Add(1)
	payload := loader(id)
	c.put(id, payload)
	return payload
}

func (c *Cache) put(id uint64, payload string) {
	slot := c.nextIdx.Add(1) & c.mask
	c.entries[slot].Store(&entry{id: id, payload: payload})
	if !c.table.Insert(ascylib.Key(id), ascylib.Value(slot)) {
		// Racing fill of the same id: first writer wins, as in a real
		// look-aside cache; drop ours.
		return
	}
	c.fills.Add(1)
}

// Invalidate drops id from the cache (e.g. on a write-through update).
func (c *Cache) Invalidate(id uint64) bool {
	_, ok := c.table.Remove(ascylib.Key(id))
	return ok
}

func main() {
	cache := NewCache(1 << 15)

	// The "database": slow to consult.
	var dbReads atomic.Uint64
	loader := func(id uint64) string {
		dbReads.Add(1)
		time.Sleep(10 * time.Microsecond) // simulated backend latency
		return fmt.Sprintf("object-%d", id)
	}

	const clients = 8
	const requests = 50000
	const hotSet = 4096 // ids 1..hotSet take 90% of traffic
	const coldSet = 1 << 20

	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := xrand.New(uint64(cl) + 1)
			for i := 0; i < requests; i++ {
				var id uint64
				if rng.Intn(10) < 9 {
					id = rng.Uint64n(hotSet) + 1
				} else {
					id = rng.Uint64n(coldSet) + 1
				}
				got := cache.Get(id, loader)
				if i%1000 == 0 && got == "" {
					panic("empty payload")
				}
				// Occasional invalidation, as after a write.
				if rng.Intn(200) == 0 {
					cache.Invalidate(id)
				}
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := float64(clients * requests)
	fmt.Printf("requests: %.0f in %v (%.2f Mreq/s)\n", total, elapsed, total/elapsed.Seconds()/1e6)
	fmt.Printf("cache hits: %d (%.1f%%), misses: %d, backend reads: %d\n",
		cache.hits.Load(), 100*float64(cache.hits.Load())/total,
		cache.misses.Load(), dbReads.Load())
	fmt.Printf("cached objects at quiescence: %d\n", cache.table.Size())
}
