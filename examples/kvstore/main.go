// kvstore: a miniature in-memory key-value store with a skip-list memtable,
// the workload the paper's introduction motivates ("skip lists are the
// backbone of key-value stores such as RocksDB").
//
// String keys are hashed to 64-bit set keys; values live in a shard of
// indirection slots so that arbitrary []byte payloads ride on the library's
// 64-bit values. A write-heavy ingest phase is followed by a read-mostly
// serving phase, mirroring an LSM memtable's life cycle.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	ascylib "repro"
)

// KV is a tiny concurrent KV store: an ASCY-compliant skip list as the
// index, plus a slot arena for payloads.
type KV struct {
	index ascylib.Set
	arena sync.Map // slot id -> []byte
	next  atomic.Uint64
}

// NewKV builds the store on the fraser-opt skip list (ASCY1+2 applied).
func NewKV() *KV {
	return &KV{index: ascylib.MustNew("sl-fraser-opt")}
}

func keyOf(k string) ascylib.Key {
	h := fnv.New64a()
	h.Write([]byte(k))
	v := h.Sum64()
	if v == 0 || v >= ^uint64(1) {
		v = 1 // stay inside the library's valid key range
	}
	return ascylib.Key(v)
}

// Put stores value under key; it reports whether the key was fresh
// (memtable semantics: one live version per key; Put on an existing key
// deletes then reinserts).
func (kv *KV) Put(key string, value []byte) bool {
	slot := kv.next.Add(1)
	kv.arena.Store(slot, value)
	k := keyOf(key)
	fresh := kv.index.Insert(k, ascylib.Value(slot))
	if !fresh {
		if old, ok := kv.index.Remove(k); ok {
			kv.arena.Delete(uint64(old))
		}
		fresh = kv.index.Insert(k, ascylib.Value(slot))
	}
	return fresh
}

// Get fetches the value for key.
func (kv *KV) Get(key string) ([]byte, bool) {
	slot, ok := kv.index.Search(keyOf(key))
	if !ok {
		return nil, false
	}
	v, ok := kv.arena.Load(uint64(slot))
	if !ok {
		return nil, false
	}
	return v.([]byte), true
}

// Delete removes key.
func (kv *KV) Delete(key string) bool {
	slot, ok := kv.index.Remove(keyOf(key))
	if ok {
		kv.arena.Delete(uint64(slot))
	}
	return ok
}

func main() {
	kv := NewKV()
	const writers = 8
	const keysPerWriter = 20000

	// Phase 1: parallel ingest (write-heavy), as when a memtable absorbs
	// a burst of puts.
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keysPerWriter; i++ {
				k := fmt.Sprintf("user:%d:event:%d", w, i)
				kv.Put(k, []byte(fmt.Sprintf("payload-%d-%d", w, i)))
			}
		}(w)
	}
	wg.Wait()
	ingest := time.Since(start)
	fmt.Printf("ingest: %d keys in %v (%.2f Mops/s)\n",
		writers*keysPerWriter, ingest,
		float64(writers*keysPerWriter)/ingest.Seconds()/1e6)
	fmt.Printf("memtable size: %d\n", kv.index.Size())

	// Phase 2: read-mostly serving (95% gets / 5% puts) — the regime the
	// ASCY1 search pattern is built for.
	start = time.Now()
	var gets, hits atomic.Uint64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keysPerWriter; i++ {
				k := fmt.Sprintf("user:%d:event:%d", (w+1)%writers, i)
				if i%20 == 19 {
					kv.Put(k, []byte("updated"))
					continue
				}
				gets.Add(1)
				if _, ok := kv.Get(k); ok {
					hits.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	serve := time.Since(start)
	fmt.Printf("serve: %d gets (%.1f%% hit) in %v (%.2f Mops/s)\n",
		gets.Load(), 100*float64(hits.Load())/float64(gets.Load()), serve,
		float64(writers*keysPerWriter)/serve.Seconds()/1e6)

	// Point reads after the churn.
	if v, ok := kv.Get("user:3:event:7"); ok {
		fmt.Printf("kv[user:3:event:7] = %q\n", v)
	}
	kv.Delete("user:3:event:7")
	_, ok := kv.Get("user:3:event:7")
	fmt.Println("after delete, present:", ok)
}
