// kvstore: a miniature in-memory key-value store with a skip-list memtable,
// the workload the paper's introduction motivates ("skip lists are the
// backbone of key-value stores such as RocksDB").
//
// Built on the typed facade ascylib.Map[uint64, []byte]: string keys are
// hashed to 64-bit map keys, and arbitrary []byte payloads ride on the
// library's 64-bit values through the facade's built-in value arena — the
// hand-rolled slot arena this example used to carry is gone. A write-heavy
// ingest phase is followed by a read-mostly serving phase, mirroring an LSM
// memtable's life cycle, and the flush uses the v2 Range surface to drain
// the memtable in key order like a real memtable-to-SSTable flush.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	ascylib "repro"
)

// KV is a tiny concurrent KV store: an ASCY-compliant skip list as the
// index, typed through the generic facade.
type KV struct {
	m *ascylib.Map[uint64, []byte]
}

// NewKV builds the store on the fraser-opt skip list (ASCY1+2 applied).
func NewKV() *KV {
	return &KV{m: ascylib.MustNewMap[uint64, []byte]("sl-fraser-opt")}
}

func keyOf(k string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k))
	v := h.Sum64()
	if v == 0 || v >= ^uint64(0)-2 {
		v = 1 // stay inside the facade's valid key range
	}
	return v
}

// Put stores value under key (upsert); it reports whether the key was fresh.
func (kv *KV) Put(key string, value []byte) bool {
	return kv.m.Put(keyOf(key), value)
}

// Get fetches the value for key.
func (kv *KV) Get(key string) ([]byte, bool) {
	return kv.m.Get(keyOf(key))
}

// Delete removes key.
func (kv *KV) Delete(key string) bool {
	_, ok := kv.m.Delete(keyOf(key))
	return ok
}

// FlushScan drains the memtable in key order (as a flush to an SSTable
// would) through the v2 Range surface — the skip list serves the scan
// natively, in sorted order, inside the structure. It returns entries
// visited and payload bytes.
func (kv *KV) FlushScan() (entries int, bytes int) {
	kv.m.Range(0, ^uint64(0)-2, func(_ uint64, v []byte) bool {
		entries++
		bytes += len(v)
		return true
	})
	return entries, bytes
}

func main() {
	kv := NewKV()
	const writers = 8
	const keysPerWriter = 20000

	// Phase 1: parallel ingest (write-heavy), as when a memtable absorbs
	// a burst of puts.
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keysPerWriter; i++ {
				k := fmt.Sprintf("user:%d:event:%d", w, i)
				kv.Put(k, []byte(fmt.Sprintf("payload-%d-%d", w, i)))
			}
		}(w)
	}
	wg.Wait()
	ingest := time.Since(start)
	fmt.Printf("ingest: %d keys in %v (%.2f Mops/s)\n",
		writers*keysPerWriter, ingest,
		float64(writers*keysPerWriter)/ingest.Seconds()/1e6)
	fmt.Printf("memtable size: %d\n", kv.m.Len())

	// Phase 2: read-mostly serving (95% gets / 5% puts) — the regime the
	// ASCY1 search pattern is built for.
	start = time.Now()
	var gets, hits atomic.Uint64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keysPerWriter; i++ {
				k := fmt.Sprintf("user:%d:event:%d", (w+1)%writers, i)
				if i%20 == 19 {
					kv.Put(k, []byte("updated"))
					continue
				}
				gets.Add(1)
				if _, ok := kv.Get(k); ok {
					hits.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	serve := time.Since(start)
	fmt.Printf("serve: %d gets (%.1f%% hit) in %v (%.2f Mops/s)\n",
		gets.Load(), 100*float64(hits.Load())/float64(gets.Load()), serve,
		float64(writers*keysPerWriter)/serve.Seconds()/1e6)

	// Phase 3: ordered flush scan over the whole memtable (v2 Range
	// surface; the skip list serves it natively).
	start = time.Now()
	entries, bytes := kv.FlushScan()
	fmt.Printf("flush scan: %d entries, %d payload bytes in %v (native order: %v)\n",
		entries, bytes, time.Since(start), kv.m.NativeOrder())

	// Point reads after the churn.
	if v, ok := kv.Get("user:3:event:7"); ok {
		fmt.Printf("kv[user:3:event:7] = %q\n", v)
	}
	kv.Delete("user:3:event:7")
	_, ok := kv.Get("user:3:event:7")
	fmt.Println("after delete, present:", ok)
}
