// Quickstart: a tour of the ascylib public API — constructing sets from the
// catalogue, the three core operations, options, and a taste of concurrent
// use. Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	ascylib "repro"
)

func main() {
	// Construct the paper's flagship design: the lock-based cache-line
	// hash table, sized for ~64k elements.
	s := ascylib.MustNew("ht-clht-lb", ascylib.Capacity(1<<16))

	// The CSDS interface: Insert / Search / Remove over 64-bit keys and
	// values. Insert fails on duplicates; Remove returns the value.
	fmt.Println("insert 1:", s.Insert(1, 100)) // true
	fmt.Println("insert 1:", s.Insert(1, 200)) // false: duplicate
	if v, ok := s.Search(1); ok {
		fmt.Println("search 1:", v) // 100 — first writer wins
	}
	if v, ok := s.Remove(1); ok {
		fmt.Println("remove 1:", v)
	}
	_, ok := s.Search(1)
	fmt.Println("search after remove:", ok) // false

	// Every algorithm in the catalogue speaks the same interface; swap
	// implementations freely.
	for _, name := range []string{"ll-harris-opt", "sl-fraser-opt", "bst-tk"} {
		set := ascylib.MustNew(name)
		for k := ascylib.Key(1); k <= 100; k++ {
			set.Insert(k, ascylib.Value(k*k))
		}
		v, _ := set.Search(7)
		fmt.Printf("%s: size=%d search(7)=%d\n", name, set.Size(), v)
	}

	// All sets (except the deliberately unsynchronized "*-async" bounds)
	// are safe for concurrent use by any number of goroutines.
	tree := ascylib.MustNew("bst-tk")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := ascylib.Key(w*1000 + 1)
			for i := ascylib.Key(0); i < 1000; i++ {
				tree.Insert(base+i, ascylib.Value(base+i))
			}
		}(w)
	}
	wg.Wait()
	fmt.Println("bst-tk after 8 concurrent inserters:", tree.Size(), "elements")

	// The catalogue itself (the paper's Table 1).
	fmt.Println("\ncatalogue:")
	for _, a := range ascylib.ByStructure(ascylib.HashTable) {
		fmt.Printf("  %-16s (%s) %s\n", a.Name, a.Class, a.Desc)
	}
}
