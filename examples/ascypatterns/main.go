// ascypatterns: a live demonstration of the four ASCY patterns (§5 of the
// paper), using the library's instrumentation to show — in numbers — what
// each pattern removes from the memory-access profile, and a quick
// throughput A/B for each.
//
// Run with: go run ./examples/ascypatterns
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/workload"

	_ "repro" // register the catalogue
)

func profile(algo string, initial, updatePct, threads int) workload.Result {
	res, err := workload.Run(workload.Config{
		Algorithm: algo,
		Options:   []core.Option{core.Capacity(initial)},
		Initial:   initial,
		UpdatePct: updatePct,
		Threads:   threads,
		Duration:  300 * time.Millisecond,
		Seed:      7,
	})
	if err != nil {
		panic(err)
	}
	return res
}

func row(algo string, r workload.Result) {
	fmt.Printf("  %-14s %8.2f Mops/s   stores/op %5.2f  cas/op %5.2f  locks/op %5.2f  restarts/op %5.3f\n",
		algo, r.Mops(),
		r.Perf.PerOp(perf.EvStore),
		r.Perf.PerOp(perf.EvCAS)+r.Perf.PerOp(perf.EvCASFail),
		r.Perf.PerOp(perf.EvLock),
		r.Perf.PerOp(perf.EvRestart)+r.Perf.PerOp(perf.EvParseRestart))
}

func main() {
	const threads = 8

	fmt.Println("ASCY1 — searches must not store, wait, or retry")
	fmt.Println("  harris searches help unlink marked nodes (stores+restarts); harris-opt defers cleanup to updates:")
	for _, algo := range []string{"ll-harris", "ll-harris-opt"} {
		row(algo, profile(algo, 1024, 5, threads))
	}

	fmt.Println("\nASCY2 — update parses store only for cleanup and never restart")
	fmt.Println("  fraser parses restart on failed cleanup; fraser-opt skips marked towers:")
	for _, algo := range []string{"sl-fraser", "sl-fraser-opt"} {
		row(algo, profile(algo, 1024, 20, threads))
	}

	fmt.Println("\nASCY3 — failed updates must be read-only")
	fmt.Println("  with ~half of updates failing, the -no variants still lock:")
	for _, algo := range []string{"ht-java-no", "ht-java", "ht-lazy-no", "ht-lazy"} {
		row(algo, profile(algo, 8192, 10, threads))
	}

	fmt.Println("\nASCY4 — successful updates store like the sequential code")
	fmt.Println("  urcu waits a grace period per removal; the ssmem re-engineering frees asynchronously:")
	for _, algo := range []string{"ht-urcu", "ht-urcu-ssmem"} {
		row(algo, profile(algo, 4096, 20, threads))
	}
	fmt.Println("  bst-tk locks once per insert, twice per remove; drachsler needs >=3 locks per remove:")
	for _, algo := range []string{"bst-drachsler", "bst-tk"} {
		row(algo, profile(algo, 2048, 20, threads))
	}

	fmt.Println("\nAll four together — the from-scratch designs vs the best prior algorithms:")
	for _, algo := range []string{"ht-pugh", "ht-clht-lb", "ht-clht-lf"} {
		row(algo, profile(algo, 4096, 20, threads))
	}
	for _, algo := range []string{"bst-natarajan", "bst-tk"} {
		row(algo, profile(algo, 4096, 20, threads))
	}
}
