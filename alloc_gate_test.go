// Allocation regression gates (ASCY4 carried to Go): the paper's fourth
// pattern demands that memory management never put waiting on the hot path;
// the Go equivalent is that the hot path must not allocate, because every
// allocation is deferred waiting — GC work that throttles exactly the
// multi-core scaling Figures 4–9 measure. These gates pin Search at zero
// steady-state allocations per operation for every family — linked lists,
// hash tables, skip lists, and BSTs, with and without SSMEM node recycling
// — so a regression shows up as a test failure, not as a slow drift in the
// figure benchmarks.
package ascylib

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// searchGateAlgos: at least one representative per family plus every
// structure that gained SSMEM recycling in this PR (recycling adds epoch
// pins to the search path, so it must prove itself allocation-free too).
var searchGateAlgos = []struct {
	algo    string
	recycle bool
}{
	// Linked lists (plain and recycling).
	{"ll-lazy", false},
	{"ll-lazy", true},
	{"ll-harris", false},
	{"ll-harris", true},
	{"ll-harris-opt", true},
	{"ll-michael", true},
	{"ll-pugh", false},
	// Hash tables.
	{"ht-clht-lb", false},
	{"ht-clht-lf", false},
	{"ht-urcu", false},
	{"ht-urcu-ssmem", false}, // recycles natively
	{"ht-java", false},
	// Skip lists (plain and recycling).
	{"sl-fraser", false},
	{"sl-fraser", true},
	{"sl-fraser-opt", true},
	{"sl-pugh", true},
	{"sl-herlihy", false},
	// BSTs.
	{"bst-tk", false},
	{"bst-natarajan", false},
	{"bst-ellen", false},
	{"bst-howley", false},
}

func TestSearchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are meaningless under race instrumentation")
	}
	for _, tc := range searchGateAlgos {
		name := tc.algo
		if tc.recycle {
			name += "/recycle"
		}
		t.Run(name, func(t *testing.T) {
			opts := []core.Option{core.Capacity(128)}
			if tc.recycle {
				opts = append(opts, core.RecycleNodes(true))
			}
			s, err := core.New(tc.algo, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for k := core.Key(1); k <= 128; k++ {
				s.Insert(k, core.Value(k))
			}
			// Mix hits and misses; both must be allocation-free.
			var sink core.Value
			k := core.Key(1)
			if avg := testing.AllocsPerRun(400, func() {
				v, _ := s.Search(k)
				sink += v
				k = k%200 + 1
			}); avg != 0 {
				t.Fatalf("%s: Search allocates %.2f/op, want 0", name, avg)
			}
			_ = sink
		})
	}
}

// TestSearchZeroAllocStripedPools: the per-P striped pool fast path must
// keep the recycling search hit at zero allocations even after the pool has
// been churned from many goroutines — the regime where allocators have been
// parked across every stripe slot and the sync.Pool has been cleared by GC,
// so a Get that fell back to adoption (which allocates a lease scan) instead
// of its stripe slot would show up here as a nonzero allocs/op.
func TestSearchZeroAllocStripedPools(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are meaningless under race instrumentation")
	}
	for _, algo := range []string{"ll-lazy", "sl-fraser-opt"} {
		t.Run(algo, func(t *testing.T) {
			s := core.MustNew(algo, core.Capacity(128), core.RecycleNodes(true))
			for k := core.Key(1); k <= 128; k++ {
				s.Insert(k, core.Value(k))
			}
			// Churn from many goroutines: registers several allocators with
			// the structure's pool and scatters them across stripe slots.
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						k := core.Key(i%128 + 1)
						s.Search(k)
						if i%16 == w {
							s.Remove(k)
							s.Insert(k, core.Value(k))
						}
					}
				}(w)
			}
			wg.Wait()
			var sink core.Value
			k := core.Key(1)
			for i := 0; i < 64; i++ { // park this goroutine's allocator in its slot
				s.Search(k)
			}
			if avg := testing.AllocsPerRun(400, func() {
				v, _ := s.Search(k)
				sink += v
				k = k%200 + 1
			}); avg != 0 {
				t.Fatalf("%s: striped-pool Search allocates %.2f/op, want 0", algo, avg)
			}
			_ = sink
		})
	}
}

// TestRemoveInsertSteadyStateRecycling: with SSMEM recycling on, a steady
// remove/insert churn of one key must stop allocating nodes once the
// allocator's free list warms up — the structural point of the PR. The
// bound is loose (a few allocs per op are epoch bookkeeping: batch stamping
// every threshold frees, snapshot slices), but without recycling this churn
// costs a node plus record allocations on every single cycle, so the gate
// distinguishes the regimes cleanly.
func TestRemoveInsertSteadyStateRecycling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are meaningless under race instrumentation")
	}
	for _, algo := range []string{"ll-lazy", "ll-michael"} {
		t.Run(algo, func(t *testing.T) {
			s := core.MustNew(algo, core.RecycleNodes(true), core.RecycleThreshold(16))
			for k := core.Key(1); k <= 64; k++ {
				s.Insert(k, core.Value(k))
			}
			// Warm the free lists.
			for i := 0; i < 200; i++ {
				s.Remove(32)
				s.Insert(32, 32)
			}
			avg := testing.AllocsPerRun(400, func() {
				s.Remove(32)
				s.Insert(32, 32)
			})
			// lazy recycles the node itself; the lock-free lists still
			// allocate fresh (ABA-proof) next-records per CAS. Either
			// way the per-cycle cost must stay a small constant.
			if avg > 4 {
				t.Fatalf("%s: remove+insert cycle allocates %.2f, want <= 4", algo, avg)
			}
		})
	}
}
