package ascylib_test

import (
	"fmt"
	"sync"
	"testing"

	ascylib "repro"
)

func TestMapDirectUint64(t *testing.T) {
	m := ascylib.MustNewMap[uint64, uint64]("ht-clht-lf", ascylib.Capacity(64))
	if !m.Insert(1, 100) {
		t.Fatal("insert failed")
	}
	if m.Insert(1, 200) {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := m.Get(1); !ok || v != 100 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if fresh := m.Put(1, 300); fresh {
		t.Fatal("Put on existing key reported fresh")
	}
	if v, _ := m.Get(1); v != 300 {
		t.Fatalf("Put did not replace: %d", v)
	}
	if v, ok := m.Delete(1); !ok || v != 300 {
		t.Fatalf("Delete = (%d,%v)", v, ok)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMapArenaValues(t *testing.T) {
	m := ascylib.MustNewMap[uint64, string]("sl-fraser-opt")
	for i := uint64(1); i <= 200; i++ {
		if !m.Insert(i, fmt.Sprintf("val-%d", i)) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i := uint64(1); i <= 200; i++ {
		v, ok := m.Get(i)
		if !ok || v != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%d) = (%q,%v)", i, v, ok)
		}
	}
	// Delete half, reinsert with new values: arena slots recycle, handles
	// stay unambiguous.
	for i := uint64(1); i <= 200; i += 2 {
		if _, ok := m.Delete(i); !ok {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	for i := uint64(1); i <= 200; i += 2 {
		if !m.Insert(i, fmt.Sprintf("new-%d", i)) {
			t.Fatalf("reinsert %d failed", i)
		}
	}
	for i := uint64(1); i <= 200; i++ {
		want := fmt.Sprintf("val-%d", i)
		if i%2 == 1 {
			want = fmt.Sprintf("new-%d", i)
		}
		if v, _ := m.Get(i); v != want {
			t.Fatalf("Get(%d) = %q, want %q", i, v, want)
		}
	}
	if m.Len() != 200 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMapSignedKeysOrdered(t *testing.T) {
	m := ascylib.MustNewMap[int, string]("sl-fraser-opt")
	if !m.NativeOrder() {
		t.Fatal("skip-list map should have native order")
	}
	for _, k := range []int{5, -3, 0, 42, -77, 13} {
		m.Insert(k, fmt.Sprintf("k%d", k))
	}
	var got []int
	n := m.Range(-100, 100, func(k int, v string) bool {
		if v != fmt.Sprintf("k%d", k) {
			t.Fatalf("Range yielded (%d,%q)", k, v)
		}
		got = append(got, k)
		return true
	})
	want := []int{-77, -3, 0, 5, 13, 42}
	if n != len(want) || len(got) != len(want) {
		t.Fatalf("Range yielded %v (n=%d), want %v", got, n, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order %v, want %v", got, want)
		}
	}
	if k, v, ok := m.Min(); !ok || k != -77 || v != "k-77" {
		t.Fatalf("Min = (%d,%q,%v)", k, v, ok)
	}
	if k, v, ok := m.Max(); !ok || k != 42 || v != "k42" {
		t.Fatalf("Max = (%d,%q,%v)", k, v, ok)
	}
	// Sub-windows with signed bounds.
	if n := m.Range(-10, 10, func(int, string) bool { return true }); n != 3 {
		t.Fatalf("Range(-10,10) = %d, want 3 (-3, 0, 5)", n)
	}
}

func TestMapUpdateAndGetOrInsert(t *testing.T) {
	m := ascylib.MustNewMap[uint32, []byte]("ht-clht-lb", ascylib.Capacity(64))
	if v, inserted := m.GetOrInsert(7, []byte("a")); !inserted || string(v) != "a" {
		t.Fatalf("GetOrInsert = (%q,%v)", v, inserted)
	}
	if v, inserted := m.GetOrInsert(7, []byte("b")); inserted || string(v) != "a" {
		t.Fatalf("second GetOrInsert = (%q,%v)", v, inserted)
	}
	v, present := m.Update(7, func(old []byte, ok bool) ([]byte, bool) {
		if !ok {
			t.Error("Update saw key 7 absent")
		}
		return append(old, 'x'), true
	})
	if !present || string(v) != "ax" {
		t.Fatalf("Update = (%q,%v)", v, present)
	}
	if v, present := m.Update(7, func([]byte, bool) ([]byte, bool) { return nil, false }); present {
		t.Fatalf("removing Update = (%q,%v)", v, present)
	}
	if _, ok := m.Get(7); ok {
		t.Fatal("key survived removing Update")
	}
}

func TestMapForEach(t *testing.T) {
	m := ascylib.MustNewMap[int64, float64]("bst-tk")
	model := map[int64]float64{}
	for i := int64(-50); i <= 50; i += 3 {
		m.Insert(i, float64(i)/2)
		model[i] = float64(i) / 2
	}
	seen := map[int64]float64{}
	m.ForEach(func(k int64, v float64) bool {
		seen[k] = v
		return true
	})
	if len(seen) != len(model) {
		t.Fatalf("ForEach saw %d entries, want %d", len(seen), len(model))
	}
	for k, v := range model {
		if seen[k] != v {
			t.Fatalf("ForEach[%d] = %v, want %v", k, seen[k], v)
		}
	}
}

// TestMapConcurrent exercises the arena's generation tags: concurrent
// delete/reinsert races must never surface a recycled value under the wrong
// key.
func TestMapConcurrent(t *testing.T) {
	m := ascylib.MustNewMap[uint64, string]("ht-clht-lf", ascylib.Capacity(256))
	const keys = 64
	workers := 8
	iters := 2000
	if testing.Short() {
		workers, iters = 4, 500
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := uint64(i%keys + 1)
				switch (i + w) % 3 {
				case 0:
					m.Put(k, fmt.Sprintf("v-%d", k))
				case 1:
					if v, ok := m.Get(k); ok && v != fmt.Sprintf("v-%d", k) {
						t.Errorf("Get(%d) returned foreign value %q", k, v)
						return
					}
				default:
					m.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestMapConcurrentCounter: typed Update atomicity end to end (native on
// ht-clht-lb, stripe fallback elsewhere), through the arena.
func TestMapConcurrentCounter(t *testing.T) {
	for _, algo := range []string{"ht-clht-lb", "sl-fraser-opt"} {
		t.Run(algo, func(t *testing.T) {
			m := ascylib.MustNewMap[uint64, int](algo, ascylib.Capacity(64))
			workers := 8
			perWorker := 1000
			if testing.Short() {
				workers, perWorker = 4, 250
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						m.Update(9, func(old int, ok bool) (int, bool) {
							if !ok {
								return 1, true
							}
							return old + 1, true
						})
					}
				}()
			}
			wg.Wait()
			if v, ok := m.Get(9); !ok || v != workers*perWorker {
				t.Fatalf("counter = (%d,%v), want (%d,true)", v, ok, workers*perWorker)
			}
		})
	}
}

func TestMapReservedKeys(t *testing.T) {
	m := ascylib.MustNewMap[uint64, uint64]("ht-clht-lf", ascylib.Capacity(64))
	for _, k := range []uint64{^uint64(0), ^uint64(0) - 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("key %d accepted; the top of the domain is reserved", k)
				}
			}()
			m.Insert(k, 1)
		}()
	}
	// The next key down is fine.
	if !m.Insert(^uint64(0)-2, 7) {
		t.Fatal("legal key rejected")
	}
}
