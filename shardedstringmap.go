package ascylib

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/ssmem"
)

// ShardedStringMap hash-partitions a string keyspace across S fully
// independent StringMap instances — the sharding layer the server runs on.
// Where Sharded(n) on Map/StringMap shards the backing structure under one
// facade, ShardedStringMap shards the facade itself: every shard is a
// complete StringMap with its own backing structure, its own value arena,
// and (with RecycleNodes) its own SSMEM recycling domain, so shards share no
// synchronization whatsoever. The point, per the paper's Figure 2 story:
// hash tables scale because they are already sharded; this applies the same
// decomposition one level up, so the list, skip-list, and BST families can
// serve heavy multi-core traffic too.
//
// Routing scrambles the same FNV-1a hash StringMap keys the core with
// through an xorshift-multiply finalizer and range-reduces its top bits
// (multiply-shift). The finalizer matters: FNV's high-order bits are poorly
// mixed for short patterned keys (a raw top-bit split leaves shards starved),
// and the scrambled route is decorrelated from the low hash bits the
// power-of-two hash tables mask for their bucket index — so sharding a CLHT
// never collapses a shard's keys onto a fraction of its buckets.
//
// What aggregates and what does not: per-key operations route to exactly one
// shard and keep StringMap's semantics unchanged; Len and RecycleStats sum
// across shards; ForEach enumerates shard by shard (no cross-shard
// snapshot). In hash mode there is no Range — hashing already destroyed
// order at the StringMap layer, and sharding does not change that.
//
// The ordered mode (NewOrderedShardedStringMap) changes both halves:
// shards are OrderedStringMap-keyed (big-endian 8-byte prefix, sorted
// chains), and routing range-reduces the raw prefix WITHOUT the finalizer
// — multiply-shift over a monotone input splits the keyspace on prefix
// boundaries, so shard i holds a contiguous key range and shard ranges
// ascend with i. A scan walks the shards covering [lo, hi] in index order
// and needs no cross-shard merge; per-key operations still route to
// exactly one shard.
type ShardedStringMap[V any] struct {
	shards []*StringMap[V]

	// ordered selects range-partitioned routing over order-preserving
	// shards (see NewOrderedShardedStringMap).
	ordered bool
}

// NewShardedStringMap builds nshards independent StringMaps on the named
// algorithm. nshards < 1 is treated as 1; counts above core.MaxShards are
// rejected (same bound as the Sharded option — a typo must not allocate
// millions of structures). opts apply to every shard, except that Capacity
// is interpreted as a total and split evenly (floored at 1 bucket per
// shard), and any Sharded option is overridden — the shards of a
// ShardedStringMap are always flat single instances.
func NewShardedStringMap[V any](algo string, nshards int, opts ...Option) (*ShardedStringMap[V], error) {
	if nshards < 1 {
		nshards = 1
	}
	if nshards > core.MaxShards {
		return nil, fmt.Errorf("ascylib: shard count %d exceeds the maximum of %d", nshards, core.MaxShards)
	}
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	per := cfg.Buckets / nshards
	if per < 1 {
		per = 1
	}
	shardOpts := make([]Option, 0, len(opts)+2)
	shardOpts = append(shardOpts, opts...)
	shardOpts = append(shardOpts, Capacity(per), Sharded(1))
	s := &ShardedStringMap[V]{shards: make([]*StringMap[V], nshards)}
	for i := range s.shards {
		m, err := NewStringMap[V](algo, shardOpts...)
		if err != nil {
			return nil, err
		}
		s.shards[i] = m
	}
	return s, nil
}

// NewOrderedShardedStringMap builds the range-partitioned variant: every
// shard is an order-preserving StringMap (8-byte-prefix keying, sorted
// chains) and routing splits the keyspace on prefix boundaries, so
// cross-shard enumeration in shard-index order is global lexicographic
// order. Everything else (capacity split, shard bounds, options) matches
// NewShardedStringMap.
//
// The trade mirrors OrderedStringMap's: real key distributions are not
// uniform over their first 8 bytes, so range partitioning can load shards
// unevenly where hash routing would not. That is the price of scans that
// touch only the shards a range covers.
func NewOrderedShardedStringMap[V any](algo string, nshards int, opts ...Option) (*ShardedStringMap[V], error) {
	s, err := NewShardedStringMap[V](algo, nshards, opts...)
	if err != nil {
		return nil, err
	}
	s.ordered = true
	for _, m := range s.shards {
		m.ordered = true
	}
	return s, nil
}

// MustNewShardedStringMap is NewShardedStringMap, panicking on error.
func MustNewShardedStringMap[V any](algo string, nshards int, opts ...Option) *ShardedStringMap[V] {
	s, err := NewShardedStringMap[V](algo, nshards, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumShards returns the shard count.
func (s *ShardedStringMap[V]) NumShards() int { return len(s.shards) }

// Shard returns shard i — for callers (like the server's per-shard flush
// sweep) that iterate the shards directly. Mutating through a shard is
// legal: it is the same instance the router targets.
func (s *ShardedStringMap[V]) Shard(i int) *StringMap[V] { return s.shards[i] }

// shardFromHash range-reduces a key hash onto the shard index. Hash mode
// applies an xorshift-multiply finalizer first (FNV's raw top bits are too
// weak to route on; see the type comment) then multiply-shift over the
// shard count. Ordered mode skips the finalizer: the input is an
// order-preserving prefix, and multiply-shift alone — floor(h·n / 2^64) —
// is monotone in h, which is exactly what makes the shards contiguous key
// ranges.
func (s *ShardedStringMap[V]) shardFromHash(h uint64) int {
	if !s.ordered {
		h ^= h >> 33
		h *= 0x9E3779B97F4A7C15
		h ^= h >> 29
	}
	hi, _ := bits.Mul64(h, uint64(len(s.shards)))
	return int(hi)
}

// shardKeyHash hashes k under the map's keying mode (see StringMap's
// keyHash); every routing and per-key path below derives both the shard
// and the core key from this one computation.
func shardKeyHash[K ~string | ~[]byte, V any](s *ShardedStringMap[V], k K) uint64 {
	if s.ordered {
		return prefixHash(k)
	}
	return strHash(k)
}

// Ordered reports whether the map routes in range-partitioned ordered mode.
func (s *ShardedStringMap[V]) Ordered() bool { return s.ordered }

// ShardOf returns the shard index key k routes to.
func (s *ShardedStringMap[V]) ShardOf(k string) int { return s.shardFromHash(shardKeyHash(s, k)) }

// ShardOfBytes is ShardOf for a []byte key.
func (s *ShardedStringMap[V]) ShardOfBytes(k []byte) int {
	return s.shardFromHash(shardKeyHash(s, k))
}

// RouteBytes returns the shard index for k together with the key hash that
// produced it, for callers that need the shard before the operation (the
// server routes per-shard epoch pins this way) without paying a second hash
// or route inside the operation itself: pass both back to GetBytesHashed or
// UpdateBytesHashed.
func (s *ShardedStringMap[V]) RouteBytes(k []byte) (shard int, hash uint64) {
	h := shardKeyHash(s, k)
	return s.shardFromHash(h), h
}

// OrderedShardSpan returns the contiguous shard index span [slo, shi] a
// scan of [lo, hi] must touch, in ascending key order (ordered mode only;
// hash mode has no meaningful span and gets the full range). A nil hi
// means no upper bound. Walking slo..shi and running ShardRangeBytes on
// each yields global lexicographic order with no merge.
func (s *ShardedStringMap[V]) OrderedShardSpan(lo, hi []byte) (slo, shi int) {
	if !s.ordered {
		return 0, len(s.shards) - 1
	}
	slo = 0
	if len(lo) > 0 {
		slo = s.shardFromHash(prefixHash(lo))
	}
	shi = len(s.shards) - 1
	if hi != nil {
		shi = s.shardFromHash(prefixHash(hi))
	}
	return slo, shi
}

// ShardRangeBytes runs a bounded ordered scan over shard sh alone:
// OrderedStringMap.RangeBytes semantics restricted to the keys that shard
// holds. Callers (the server's store) bracket each shard's scan in that
// shard's epoch and walk OrderedShardSpan's span in order. Panics in hash
// mode — there is no order to scan.
func (s *ShardedStringMap[V]) ShardRangeBytes(sh int, lo, hi []byte, limit int, fn func(k string, v V) bool) int {
	if !s.ordered {
		panic("ascylib: ShardRangeBytes on a hash-routed ShardedStringMap")
	}
	return rangeBytes(s.shards[sh], lo, hi, limit, fn)
}

// ShardMin returns shard sh's smallest entry (ordered mode only).
func (s *ShardedStringMap[V]) ShardMin(sh int) (string, V, bool) {
	if !s.ordered {
		panic("ascylib: ShardMin on a hash-routed ShardedStringMap")
	}
	return minEntry(s.shards[sh])
}

// ShardMax returns shard sh's largest entry (ordered mode only).
func (s *ShardedStringMap[V]) ShardMax(sh int) (string, V, bool) {
	if !s.ordered {
		panic("ascylib: ShardMax on a hash-routed ShardedStringMap")
	}
	return maxEntry(s.shards[sh])
}

// GetBytesHashed is GetBytes with the route precomputed by RouteBytes; both
// arguments must come from one RouteBytes call over the same key.
func (s *ShardedStringMap[V]) GetBytesHashed(shard int, hash uint64, k []byte) (V, bool) {
	return getChain(s.shards[shard], hash, k)
}

// UpdateBytesHashed is UpdateBytes with the route precomputed by
// RouteBytes; shard and hash must come from one RouteBytes call over the
// same key.
func (s *ShardedStringMap[V]) UpdateBytesHashed(shard int, hash uint64, k []byte, f func(old V, present bool) (V, bool)) (V, bool) {
	return updateChain(s.shards[shard], hash, k, f)
}

// BatchGet is one result slot of GetBytesBatch: the value found for the
// corresponding key (OK false on a miss).
type BatchGet[V any] struct {
	Val V
	OK  bool

	shard int32
	done  bool
	hash  uint64
}

// GetBytesBatch looks up every keys[i] with one hash computation per key and
// the lookups grouped by shard, so each shard's buckets are walked
// consecutively instead of ping-ponging between shards — the batched analog
// of GetBytes, built on the same StringMap.GetBytesHashed single-hash path.
// Results land in request order: out (reused across calls; pass the previous
// return value) is resized to len(keys) and out[i] reports key i, whatever
// shard it routed to. Like GetBytes, the steady state allocates nothing once
// out's backing array has grown to the caller's batch size.
func (s *ShardedStringMap[V]) GetBytesBatch(keys [][]byte, out []BatchGet[V]) []BatchGet[V] {
	out = out[:0]
	for _, k := range keys {
		h := shardKeyHash(s, k)
		out = append(out, BatchGet[V]{shard: int32(s.shardFromHash(h)), hash: h})
	}
	// Shard-grouped walk without a side table: each outer pass takes the
	// first unresolved key's shard and resolves every key routed to it, so
	// the number of passes is the number of distinct shards touched.
	for i := range out {
		if out[i].done {
			continue
		}
		sh := out[i].shard
		m := s.shards[sh]
		for j := i; j < len(out); j++ {
			if out[j].shard != sh {
				continue
			}
			out[j].Val, out[j].OK = m.GetBytesHashed(out[j].hash, keys[j])
			out[j].done = true
		}
	}
	return out
}

// Get returns the value stored under k.
func (s *ShardedStringMap[V]) Get(k string) (V, bool) {
	h := shardKeyHash(s, k)
	return getChain(s.shards[s.shardFromHash(h)], h, k)
}

// GetBytes is Get for a []byte key; like StringMap.GetBytes it allocates
// nothing — one hash computation routes and looks up.
func (s *ShardedStringMap[V]) GetBytes(k []byte) (V, bool) {
	h := shardKeyHash(s, k)
	return getChain(s.shards[s.shardFromHash(h)], h, k)
}

// Update atomically transforms the entry for k in its shard; the contract
// is StringMap.Update's.
func (s *ShardedStringMap[V]) Update(k string, f func(old V, present bool) (V, bool)) (V, bool) {
	h := shardKeyHash(s, k)
	return updateChain(s.shards[s.shardFromHash(h)], h, k, f)
}

// UpdateBytes is Update for a []byte key.
func (s *ShardedStringMap[V]) UpdateBytes(k []byte, f func(old V, present bool) (V, bool)) (V, bool) {
	h := shardKeyHash(s, k)
	return updateChain(s.shards[s.shardFromHash(h)], h, k, f)
}

// Put stores v under k, replacing any existing value, and reports whether
// the key was fresh. Like every per-key operation here it hashes once,
// routing and operating on the same hash through the chain helpers shared
// with StringMap.
func (s *ShardedStringMap[V]) Put(k string, v V) bool {
	h := shardKeyHash(s, k)
	return putChain(s.shards[s.shardFromHash(h)], h, k, v)
}

// Insert adds (k, v) if k is absent and reports whether it did.
func (s *ShardedStringMap[V]) Insert(k string, v V) bool {
	h := shardKeyHash(s, k)
	return insertChain(s.shards[s.shardFromHash(h)], h, k, v)
}

// GetOrInsert returns the existing value for k, or stores and returns v.
func (s *ShardedStringMap[V]) GetOrInsert(k string, v V) (V, bool) {
	h := shardKeyHash(s, k)
	return getOrInsertChain(s.shards[s.shardFromHash(h)], h, k, v)
}

// Delete removes k, returning the removed value.
func (s *ShardedStringMap[V]) Delete(k string) (V, bool) {
	h := shardKeyHash(s, k)
	return deleteChain(s.shards[s.shardFromHash(h)], h, k)
}

// Len sums the shards' entry counts. Linear time, quiescent use.
func (s *ShardedStringMap[V]) Len() int {
	n := 0
	for _, m := range s.shards {
		n += m.Len()
	}
	return n
}

// ForEach enumerates entries shard by shard, in no particular order, until
// yield returns false. Entries deleted concurrently may be skipped; there is
// no cross-shard snapshot.
func (s *ShardedStringMap[V]) ForEach(yield func(k string, v V) bool) {
	for _, m := range s.shards {
		stopped := false
		m.ForEach(func(k string, v V) bool {
			if !yield(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// RecycleStats sums the SSMEM allocator counters of every shard's backing
// structure (zero without recycling).
func (s *ShardedStringMap[V]) RecycleStats() ssmem.Stats {
	var agg ssmem.Stats
	for _, m := range s.shards {
		agg.Add(m.RecycleStats())
	}
	return agg
}
