#!/usr/bin/env bash
# test_clusterup.sh — regression test for clusterup.sh process hygiene.
#
# The bug this pins down: when node i failed to boot, the old teardown ran
# `kill "$(cat pids)"` — all PIDs newline-glued into ONE argument, which
# kill rejects — so nodes 0..i-1 were orphaned, squatting their ports and
# polluting every later run on the machine. The fix is an EXIT trap that
# kills each already-started PID individually on any failing exit.
#
# The test uses a fake ascyserve (first invocation binds and parks, later
# ones die before binding) so it needs no built binaries and no real ports:
#   1. failure path: 2-node boot where node 1 dies -> nonzero exit AND
#      node 0's process is dead afterwards;
#   2. success path: 1-node boot -> exit 0, the address on stdout, and the
#      node still running (the trap must NOT fire on success).
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
FAKEPIDS=""
cleanup() {
  for p in $FAKEPIDS; do kill "$p" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

FAKE="$TMP/fake-ascyserve"
cat > "$FAKE" <<'EOF'
#!/usr/bin/env bash
# Fake ascyserve: the first boot in a RUNDIR writes its addr file and parks
# like a healthy server; every later boot exits before binding.
addrfile=""
while [ $# -gt 0 ]; do
  case "$1" in
    -addrfile) addrfile=$2; shift 2 ;;
    *) shift ;;
  esac
done
dir=$(dirname "$addrfile")
count=$(cat "$dir/boot-count" 2>/dev/null || echo 0)
echo $((count + 1)) > "$dir/boot-count"
if [ "$count" -eq 0 ]; then
  echo 127.0.0.1:19999 > "$addrfile"
  sleep 300
fi
exit 1
EOF
chmod +x "$FAKE"

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# --- 1. failing boot must tear down the nodes already started -------------
RUNDIR="$TMP/run-fail"
set +e
ASCYSERVE="$FAKE" RUNDIR="$RUNDIR" CLUSTERUP_BIND_RETRIES=20 \
  bash scripts/clusterup.sh 2 >"$TMP/out-fail" 2>"$TMP/err-fail"
status=$?
set -e
[ "$status" -ne 0 ] || fail "clusterup exited 0 although node 1 never bound"
node0=$(head -n1 "$RUNDIR/pids")
FAKEPIDS="$node0"
for _ in $(seq 50); do
  kill -0 "$node0" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$node0" 2>/dev/null; then
  fail "node 0 (pid $node0) orphaned after failed cluster boot"
fi
FAKEPIDS=""

# --- 2. successful boot must leave the cluster running --------------------
RUNDIR="$TMP/run-ok"
ASCYSERVE="$FAKE" RUNDIR="$RUNDIR" CLUSTERUP_BIND_RETRIES=20 \
  bash scripts/clusterup.sh 1 >"$TMP/out-ok" 2>"$TMP/err-ok" \
  || fail "single-node boot failed: $(cat "$TMP/err-ok")"
[ "$(cat "$TMP/out-ok")" = "127.0.0.1:19999" ] \
  || fail "stdout was '$(cat "$TMP/out-ok")', want the node address"
node0=$(head -n1 "$RUNDIR/pids")
FAKEPIDS="$node0"
kill -0 "$node0" 2>/dev/null \
  || fail "node 0 (pid $node0) not running after successful boot (trap fired on success?)"
kill "$node0" 2>/dev/null || true
FAKEPIDS=""

echo "PASS: clusterup.sh kills started nodes on failure and leaves them on success"
