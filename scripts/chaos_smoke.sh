#!/usr/bin/env bash
# chaos_smoke.sh — end-to-end fault-tolerance smoke over real processes.
#
# What it proves, with actual ascyserve binaries and actual SIGTERMs:
#
#   1. Panic isolation: a get of the armed -chaospanickey kills only the
#      connection that sent it. The process keeps serving other
#      connections and counts the panic in handler_panics.
#   2. Kill/restart failover: SIGTERM one node of a 3-node cluster while
#      ascybench drives it with -tolerate -degraded miss; the run keeps
#      going through the outage, the node is rebooted on the same address,
#      and the BENCH artifact records positive throughput, at least one
#      node failover, and at least one reconnect.
#   3. Drain stats: the SIGTERMed node prints its final stats line on the
#      way down (the "last word" a chaos harness reads post-mortem).
#
# Usage: scripts/chaos_smoke.sh
# Environment:
#   ASCYSERVE   path to ascyserve binary   (default: bin/ascyserve)
#   ASCYBENCH   path to ascybench binary   (default: bin/ascybench)
set -euo pipefail
cd "$(dirname "$0")/.."

ASCYSERVE=${ASCYSERVE:-bin/ascyserve}
ASCYBENCH=${ASCYBENCH:-bin/ascybench}
RUNDIR=$(mktemp -d)

cleanup() {
  # Kill every server this script started, directly or via clusterup.sh.
  [ -f "$RUNDIR/pids" ] && while read -r pid; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done < "$RUNDIR/pids"
  [ -n "${PANIC_PID:-}" ] && kill "$PANIC_PID" 2>/dev/null || true
  [ -n "${REBORN_PID:-}" ] && kill "$REBORN_PID" 2>/dev/null || true
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# memcmd HOST:PORT COMMANDS... — pipe protocol lines into a server over
# /dev/tcp (no nc dependency) and print whatever comes back.
memcmd() {
  local addr=$1 host port
  shift
  host=${addr%:*}
  port=${addr##*:}
  exec 3<>"/dev/tcp/$host/$port" || return 1
  printf '%b' "$*" >&3
  timeout 5 cat <&3 || true
  exec 3>&- 3<&- || true
}

# --- 1. panic isolation ----------------------------------------------------
echo "== panic isolation =="
"$ASCYSERVE" -addr 127.0.0.1:0 -algo ht-clht-lb -quiet \
  -chaospanickey chaos-boom -addrfile "$RUNDIR/panic.addr" \
  > "$RUNDIR/panic.log" 2>&1 &
PANIC_PID=$!
for _ in $(seq 100); do [ -s "$RUNDIR/panic.addr" ] && break; sleep 0.1; done
[ -s "$RUNDIR/panic.addr" ] || fail "panic-test server never bound"
PADDR=$(cat "$RUNDIR/panic.addr")

# The armed key panics its handler; the connection dies mid-response.
memcmd "$PADDR" 'get chaos-boom\r\n' > /dev/null || true
kill -0 "$PANIC_PID" 2>/dev/null || fail "handler panic terminated ascyserve"
# A fresh connection must be served as if nothing happened...
out=$(memcmd "$PADDR" 'set k 0 0 2\r\nhi\r\nget k\r\nquit\r\n')
echo "$out" | grep -q "STORED" || fail "server not serving after panic: $out"
echo "$out" | grep -q "hi" || fail "stored value unreadable after panic: $out"
# ...and the panic must be on the books.
stats=$(memcmd "$PADDR" 'stats\r\nquit\r\n')
echo "$stats" | grep -q "STAT handler_panics 1" \
  || fail "handler_panics not counted: $(echo "$stats" | grep panics || true)"
kill "$PANIC_PID" && wait "$PANIC_PID" 2>/dev/null || true
unset PANIC_PID
echo "ok: panic isolated, counted, process survived"

# --- 2. kill/restart failover under load -----------------------------------
echo "== kill/restart failover =="
ADDRS=$(RUNDIR=$RUNDIR scripts/clusterup.sh 3 -algo ht-clht-lb -quiet)
echo "cluster nodes: $ADDRS"

"$ASCYBENCH" loadgen -cluster "$ADDRS" -degraded miss -tolerate \
  -conns 2 -pipeline 8 -duration 4s -rangepct 5 \
  -out "$RUNDIR/BENCH_chaos.json" > "$RUNDIR/loadgen.out" 2>&1 &
LG_PID=$!

sleep 1
VICTIM_PID=$(sed -n '1p' "$RUNDIR/pids")
VICTIM_ADDR=$(cat "$RUNDIR/node0.addr")
kill -TERM "$VICTIM_PID"
# 3. The node's drain path must leave its final stats line in the log.
# The victim is clusterup.sh's child, not ours, so `wait` can't block on
# it — poll the log instead (the drain budget is 5s; allow a bit more).
for _ in $(seq 80); do
  grep -q "final stats:" "$RUNDIR/node0.log" && break
  sleep 0.1
done
grep -q "final stats:" "$RUNDIR/node0.log" \
  || fail "SIGTERMed node printed no final stats line (node0.log)"
echo "victim down: $VICTIM_ADDR"

sleep 1
"$ASCYSERVE" -addr "$VICTIM_ADDR" -algo ht-clht-lb -quiet \
  > "$RUNDIR/node0-reborn.log" 2>&1 &
REBORN_PID=$!
echo "victim rebooting on $VICTIM_ADDR"

wait "$LG_PID" || { cat "$RUNDIR/loadgen.out"; fail "loadgen did not survive the outage"; }
cat "$RUNDIR/loadgen.out"

python3 - "$RUNDIR/BENCH_chaos.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "ascylib/bench-server/v7", d["schema"]
run = d["runs"][0]
# Throughput must be positive THROUGH the outage, the failover must have
# been seen, and the reborn node must have been re-adopted.
assert run["throughput_ops_s"] > 0, run
assert run["node_failovers"] >= 1, run
assert run["node_reconnects"] >= 1, run
assert run["degraded_misses"] + run["degraded_errors"] > 0, run
EOF
echo "ok: drove through kill+restart with failover accounting"
echo "chaos smoke: all checks passed"
