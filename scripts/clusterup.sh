#!/usr/bin/env bash
# clusterup.sh — boot N independent ascyserve processes on ephemeral
# loopback ports and print the comma-joined address list on stdout, in boot
# order (the order IS the cluster's node identity: clients must pass the
# same list, in the same order, to -cluster).
#
# Usage: scripts/clusterup.sh N [ascyserve flags...]
#   N                 number of server processes to boot
#   remaining args    passed through to every ascyserve (e.g. -algo ll-lazy)
#
# Environment:
#   ASCYSERVE  path to the ascyserve binary   (default: bin/ascyserve)
#   RUNDIR     scratch dir for addr/pid files (default: mktemp -d)
#
# Each process writes its bound address to $RUNDIR/node<i>.addr via
# -addrfile; PIDs land in $RUNDIR/pids (one per line) so a caller can
# `kill $(cat "$RUNDIR/pids")` to tear the cluster down. The script waits
# until every node has bound before printing, so the output is usable the
# moment it appears — though ascybench's -dialtimeout retry loop tolerates
# racing it anyway.
set -euo pipefail

if [ $# -lt 1 ]; then
  echo "usage: $0 N [ascyserve flags...]" >&2
  exit 2
fi
N=$1
shift

ASCYSERVE=${ASCYSERVE:-bin/ascyserve}
RUNDIR=${RUNDIR:-$(mktemp -d)}
mkdir -p "$RUNDIR"
: > "$RUNDIR/pids"

for i in $(seq 0 $((N - 1))); do
  rm -f "$RUNDIR/node$i.addr"
  # The servers must NOT inherit our stdout: callers capture it with
  # $(clusterup.sh ...), and command substitution only returns once every
  # process holding the pipe's write end exits. Logs go to per-node files.
  "$ASCYSERVE" -addr 127.0.0.1:0 -addrfile "$RUNDIR/node$i.addr" "$@" \
    > "$RUNDIR/node$i.log" 2>&1 &
  echo $! >> "$RUNDIR/pids"
done

ADDRS=""
for i in $(seq 0 $((N - 1))); do
  for _ in $(seq 100); do
    [ -s "$RUNDIR/node$i.addr" ] && break
    sleep 0.1
  done
  if [ ! -s "$RUNDIR/node$i.addr" ]; then
    echo "node $i failed to bind within 10s" >&2
    kill "$(cat "$RUNDIR/pids")" 2>/dev/null || true
    exit 1
  fi
  ADDRS="$ADDRS${ADDRS:+,}$(cat "$RUNDIR/node$i.addr")"
done

echo "cluster up: $N node(s), pids in $RUNDIR/pids" >&2
echo "$ADDRS"
