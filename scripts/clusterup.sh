#!/usr/bin/env bash
# clusterup.sh — boot N independent ascyserve processes on ephemeral
# loopback ports and print the comma-joined address list on stdout, in boot
# order (the order IS the cluster's node identity: clients must pass the
# same list, in the same order, to -cluster).
#
# Usage: scripts/clusterup.sh N [ascyserve flags...]
#   N                 number of server processes to boot
#   remaining args    passed through to every ascyserve (e.g. -algo ll-lazy)
#
# Environment:
#   ASCYSERVE  path to the ascyserve binary   (default: bin/ascyserve)
#   RUNDIR     scratch dir for addr/pid files (default: mktemp -d)
#
# Each process writes its bound address to $RUNDIR/node<i>.addr via
# -addrfile; PIDs land in $RUNDIR/pids (one per line) so a caller can
# `kill $(cat "$RUNDIR/pids")` to tear the cluster down. The script waits
# until every node has bound before printing, so the output is usable the
# moment it appears — though ascybench's -dialtimeout retry loop tolerates
# racing it anyway.
#
# If any node fails to boot, every node already started is killed before the
# script exits nonzero — a partial cluster must not outlive the script that
# promised a whole one. (The EXIT trap covers set -e aborts and signals too,
# not just the explicit bind-timeout path.)
set -euo pipefail

if [ $# -lt 1 ]; then
  echo "usage: $0 N [ascyserve flags...]" >&2
  exit 2
fi
N=$1
shift

ASCYSERVE=${ASCYSERVE:-bin/ascyserve}
RUNDIR=${RUNDIR:-$(mktemp -d)}
# Bind-wait budget: retries x 0.1s per node (overridable for tests).
BIND_RETRIES=${CLUSTERUP_BIND_RETRIES:-100}
mkdir -p "$RUNDIR"
: > "$RUNDIR/pids"

# kill_started: tear down every PID recorded so far. One kill per PID (the
# pids file is one per line; a single quoted $(cat) would hand kill all of
# them glued into one unparseable argument).
kill_started() {
  while read -r pid; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done < "$RUNDIR/pids"
}

# Until the script succeeds, any exit — bind timeout, set -e abort, signal —
# means a partial cluster: kill whatever was already started.
cleanup_on_fail() {
  status=$?
  if [ "$status" -ne 0 ]; then
    kill_started
  fi
}
trap cleanup_on_fail EXIT

for i in $(seq 0 $((N - 1))); do
  rm -f "$RUNDIR/node$i.addr"
  # The servers must NOT inherit our stdout: callers capture it with
  # $(clusterup.sh ...), and command substitution only returns once every
  # process holding the pipe's write end exits. Logs go to per-node files.
  "$ASCYSERVE" -addr 127.0.0.1:0 -addrfile "$RUNDIR/node$i.addr" "$@" \
    > "$RUNDIR/node$i.log" 2>&1 &
  echo $! >> "$RUNDIR/pids"
done

ADDRS=""
for i in $(seq 0 $((N - 1))); do
  for _ in $(seq "$BIND_RETRIES"); do
    [ -s "$RUNDIR/node$i.addr" ] && break
    # A node that already died will never bind; stop waiting for it.
    kill -0 "$(sed -n "$((i + 1))p" "$RUNDIR/pids")" 2>/dev/null || break
    sleep 0.1
  done
  if [ ! -s "$RUNDIR/node$i.addr" ]; then
    echo "node $i failed to bind (see $RUNDIR/node$i.log)" >&2
    exit 1 # EXIT trap kills the nodes already started
  fi
  ADDRS="$ADDRS${ADDRS:+,}$(cat "$RUNDIR/node$i.addr")"
done

echo "cluster up: $N node(s), pids in $RUNDIR/pids" >&2
echo "$ADDRS"
