package ascylib

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/xrand"
)

// adversarialKeys is the conformance corpus: every way the 8-byte-prefix
// encoding can be stressed. Shared prefixes longer than 8 bytes force
// chain ordering; length ties and prefix-of-each-other pairs probe the
// zero-pad comparison; 0xFF runs probe the reserved-top clamp; the empty
// key is the global minimum.
func adversarialKeys() []string {
	ks := []string{
		"", "a", "aa", "ab", "b",
		"shared-prefix-00", "shared-prefix-01", "shared-prefix-010", "shared-prefix-1",
		"shared-prefix", "shared-prefi", "shared-pre",
		"exactly8", "exactly8a", "exactly8b", "exactly7",
		"\x01", "\x01\x01", "\x7f", "~~~~~~~~~~",
		"k1", "k10", "k100", "k2", "k20", "k9", "k99",
	}
	// 0xFF runs: everything here clamps onto the same top core key, so the
	// clamped bucket's chain must order them fully.
	for i := 0; i < 12; i++ {
		ks = append(ks, strings.Repeat("\xff", 5+i))
		ks = append(ks, strings.Repeat("\xff", 8)+fmt.Sprintf("%03d", i))
	}
	// Long shared 8+ byte prefixes with varied tails.
	for i := 0; i < 40; i++ {
		ks = append(ks, fmt.Sprintf("longprefix-shared-%04d", i*7%40))
	}
	return ks
}

// TestOrderedStringMapOracle pins lexicographic enumeration against a
// sorted-slice oracle for the adversarial corpus, across backends with and
// without native order.
func TestOrderedStringMapOracle(t *testing.T) {
	for _, algo := range []string{"sl-fraser-opt", "bst-ellen", "ht-clht-lb", "ll-lazy"} {
		t.Run(algo, func(t *testing.T) {
			m := MustNewOrderedStringMap[int](algo, Capacity(64))
			oracle := map[string]int{}
			for i, k := range adversarialKeys() {
				m.Put(k, i)
				oracle[k] = i
			}
			sorted := make([]string, 0, len(oracle))
			for k := range oracle {
				sorted = append(sorted, k)
			}
			sort.Strings(sorted)

			if got := m.Len(); got != len(oracle) {
				t.Fatalf("Len = %d, want %d", got, len(oracle))
			}
			for k, want := range oracle {
				if v, ok := m.Get(k); !ok || v != want {
					t.Fatalf("Get(%q) = %d, %v; want %d", k, v, ok, want)
				}
			}

			// Full unbounded scan must equal the sorted oracle exactly.
			var got []string
			m.RangeBytes(nil, nil, 0, func(k string, v int) bool {
				if oracle[k] != v {
					t.Fatalf("scan yielded %q=%d, oracle %d", k, v, oracle[k])
				}
				got = append(got, k)
				return true
			})
			if len(got) != len(sorted) {
				t.Fatalf("scan yielded %d keys, want %d", len(got), len(sorted))
			}
			for i := range got {
				if got[i] != sorted[i] {
					t.Fatalf("scan[%d] = %q, want %q", i, got[i], sorted[i])
				}
			}

			// Min/Max match the oracle's ends.
			if k, _, ok := m.Min(); !ok || k != sorted[0] {
				t.Fatalf("Min = %q, %v; want %q", k, ok, sorted[0])
			}
			if k, _, ok := m.Max(); !ok || k != sorted[len(sorted)-1] {
				t.Fatalf("Max = %q, %v; want %q", k, ok, sorted[len(sorted)-1])
			}

			// Random bounded sub-ranges with limits, including inverted
			// bounds (must be empty) and bounds that are not stored keys.
			rng := xrand.New(7)
			bounds := append(append([]string{}, sorted...), "m", "shared-prefix-005", "\xff\xff", "zz")
			for trial := 0; trial < 200; trial++ {
				lo := bounds[rng.Intn(len(bounds))]
				hi := bounds[rng.Intn(len(bounds))]
				limit := int(rng.Uint64n(10))
				var want []string
				if lo <= hi {
					for _, k := range sorted {
						if k >= lo && k <= hi {
							want = append(want, k)
							if limit > 0 && len(want) == limit {
								break
							}
						}
					}
				}
				var scan []string
				n := m.RangeBytes([]byte(lo), []byte(hi), limit, func(k string, _ int) bool {
					scan = append(scan, k)
					return true
				})
				if n != len(scan) || len(scan) != len(want) {
					t.Fatalf("Range(%q,%q,%d) yielded %d (%v), want %v", lo, hi, limit, n, scan, want)
				}
				for i := range scan {
					if scan[i] != want[i] {
						t.Fatalf("Range(%q,%q,%d)[%d] = %q, want %q", lo, hi, limit, i, scan[i], want[i])
					}
				}
			}
		})
	}
}

// TestOrderedShardedStringMapSpan pins that range-partitioned routing
// enumerates shards in global key order: walking OrderedShardSpan's span
// and scanning each shard must reproduce the sorted oracle, for shard
// counts that do and don't divide the keyspace evenly.
func TestOrderedShardedStringMapSpan(t *testing.T) {
	for _, nshards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards%d", nshards), func(t *testing.T) {
			s, err := NewOrderedShardedStringMap[int]("sl-fraser-opt", nshards, Capacity(64))
			if err != nil {
				t.Fatal(err)
			}
			oracle := map[string]int{}
			for i, k := range adversarialKeys() {
				s.Put(k, i)
				oracle[k] = i
			}
			sorted := make([]string, 0, len(oracle))
			for k := range oracle {
				sorted = append(sorted, k)
			}
			sort.Strings(sorted)

			for k, want := range oracle {
				if v, ok := s.Get(k); !ok || v != want {
					t.Fatalf("Get(%q) = %d, %v; want %d", k, v, ok, want)
				}
			}

			// The full spanned walk is the sorted oracle.
			slo, shi := s.OrderedShardSpan(nil, nil)
			if slo != 0 || shi != nshards-1 {
				t.Fatalf("unbounded span = [%d,%d], want [0,%d]", slo, shi, nshards-1)
			}
			var got []string
			for sh := slo; sh <= shi; sh++ {
				s.ShardRangeBytes(sh, nil, nil, 0, func(k string, _ int) bool {
					got = append(got, k)
					return true
				})
			}
			if len(got) != len(sorted) {
				t.Fatalf("spanned scan yielded %d keys, want %d", len(got), len(sorted))
			}
			for i := range got {
				if got[i] != sorted[i] {
					t.Fatalf("spanned scan[%d] = %q, want %q", i, got[i], sorted[i])
				}
			}

			// Bounded sub-spans: every key in [lo, hi] must live inside the
			// span's shards, and the walk must be the oracle's slice.
			rng := xrand.New(11)
			for trial := 0; trial < 100; trial++ {
				lo := sorted[rng.Intn(len(sorted))]
				hi := sorted[rng.Intn(len(sorted))]
				if lo > hi {
					lo, hi = hi, lo
				}
				var want []string
				for _, k := range sorted {
					if k >= lo && k <= hi {
						want = append(want, k)
					}
				}
				a, b := s.OrderedShardSpan([]byte(lo), []byte(hi))
				var scan []string
				for sh := a; sh <= b; sh++ {
					s.ShardRangeBytes(sh, []byte(lo), []byte(hi), 0, func(k string, _ int) bool {
						scan = append(scan, k)
						return true
					})
				}
				if len(scan) != len(want) {
					t.Fatalf("span(%q,%q) yielded %v, want %v", lo, hi, scan, want)
				}
				for i := range scan {
					if scan[i] != want[i] {
						t.Fatalf("span(%q,%q)[%d] = %q, want %q", lo, hi, i, scan[i], want[i])
					}
				}
			}

			// ShardMin/ShardMax agree with each shard's own scan ends.
			for sh := 0; sh < nshards; sh++ {
				var first, last string
				sawFirst := false
				n := s.ShardRangeBytes(sh, nil, nil, 0, func(k string, _ int) bool {
					if !sawFirst {
						first, sawFirst = k, true
					}
					last = k
					return true
				})
				mink, _, minok := s.ShardMin(sh)
				maxk, _, maxok := s.ShardMax(sh)
				if n == 0 {
					if minok || maxok {
						t.Fatalf("shard %d empty but Min/Max reported %v/%v", sh, minok, maxok)
					}
					continue
				}
				if !minok || mink != first {
					t.Fatalf("shard %d Min = %q, %v; want %q", sh, mink, minok, first)
				}
				if !maxok || maxk != last {
					t.Fatalf("shard %d Max = %q, %v; want %q", sh, maxk, maxok, last)
				}
			}
		})
	}
}

// TestOrderedStringMapChurn is the concurrency half of the conformance
// gate (run it under -race): scans must stay sorted, duplicate-free, and
// bounded while writers churn adversarially colliding keys underneath.
func TestOrderedStringMapChurn(t *testing.T) {
	for _, algo := range []string{"sl-fraser-opt", "ht-clht-lb"} {
		t.Run(algo, func(t *testing.T) {
			m := MustNewOrderedStringMap[uint64](algo, Capacity(128))
			keys := adversarialKeys()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := xrand.New(uint64(w + 1))
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						k := keys[rng.Intn(len(keys))]
						if rng.Uint64n(3) == 0 {
							m.Delete(k)
						} else {
							m.Put(k, uint64(i))
						}
					}
				}(w)
			}
			const limit = 25
			for round := 0; round < 300; round++ {
				prev, n, seen := "", 0, map[string]bool{}
				first := true
				m.RangeBytes(nil, nil, limit, func(k string, _ uint64) bool {
					if !first && k <= prev {
						t.Errorf("scan out of order: %q after %q", k, prev)
					}
					if seen[k] {
						t.Errorf("scan yielded %q twice", k)
					}
					seen[k] = true
					prev, first = k, false
					n++
					return true
				})
				if n > limit {
					t.Errorf("scan yielded %d keys, limit %d", n, limit)
				}
				if t.Failed() {
					break
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}
