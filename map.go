package ascylib

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ssmem"
)

// IntKey is the key constraint of Map: any integer type. The encoding onto
// the library's 64-bit key space preserves order (signed types are mapped
// through a sign-bit flip), so Range/Min/Max work on typed keys, including
// negative ones.
type IntKey interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr
}

// Map is the typed facade over the 64-bit core: a concurrent map from an
// integer key type K to an arbitrary value type V, backed by any registered
// algorithm. It replaces the hand-rolled key-hash + value-arena code the
// examples used to carry.
//
// Values: when V is exactly uint64 (or Value), values ride directly in the
// structure's 64-bit value word — the zero-overhead path. Any other V lives
// in a sharded, generation-tagged arena and the word is a tagged slot
// handle; a reader that loses the race with a concurrent Delete detects the
// stale generation and retries, so torn or recycled values are never
// returned.
//
// Keys: the two largest values of a 64-bit key domain (e.g. MaxUint64 and
// MaxUint64-1 for K = uint64, MaxInt64 and MaxInt64-1 for K = int64) are
// reserved by the core's sentinels; using them panics. Smaller key types
// are unaffected.
//
// All operations are safe for concurrent use when the backing algorithm is
// (registry Safe flag). Update's atomicity follows the backing algorithm's
// capability: native (e.g. ht-clht-lb) is atomic against everything;
// fallback Updates are atomic against each other through this Map.
type Map[K IntKey, V any] struct {
	set    core.Extended
	raw    core.Set // the unwrapped structure (recycling stats, shard probing)
	ord    core.Ordered
	native bool
	signed bool
	direct bool
	arena  *mapArena[V]
}

// NewMap builds a typed map on the named algorithm ("ht-clht-lf" and
// "sl-fraser-opt" are the headline choices for unordered and ordered use).
func NewMap[K IntKey, V any](algo string, opts ...Option) (*Map[K, V], error) {
	s, err := core.New(algo, opts...)
	if err != nil {
		return nil, err
	}
	ord, native := core.OrderedOf(s)
	var zk K
	m := &Map[K, V]{
		set:    core.Extend(s),
		raw:    s,
		ord:    ord,
		native: native,
		signed: zk-1 < zk,
	}
	var zv V
	switch any(zv).(type) {
	case uint64, core.Value:
		m.direct = true
	default:
		m.arena = &mapArena[V]{}
	}
	return m, nil
}

// MustNewMap is NewMap, panicking on error.
func MustNewMap[K IntKey, V any](algo string, opts ...Option) *Map[K, V] {
	m, err := NewMap[K, V](algo, opts...)
	if err != nil {
		panic(err)
	}
	return m
}

// enc maps a typed key onto the core's key space, preserving order.
func (m *Map[K, V]) enc(k K) core.Key {
	u := uint64(k)
	if m.signed {
		u ^= 1 << 63
	}
	u++
	if u == 0 || u == math.MaxUint64 {
		panic(fmt.Sprintf("ascylib: key %v is in the reserved top of the key domain", k))
	}
	return core.Key(u)
}

// dec inverts enc.
func (m *Map[K, V]) dec(c core.Key) K {
	u := uint64(c) - 1
	if m.signed {
		u ^= 1 << 63
	}
	return K(u)
}

func (m *Map[K, V]) encVal(v V) core.Value {
	if m.direct {
		switch x := any(v).(type) {
		case uint64:
			return core.Value(x)
		case core.Value:
			return x
		}
	}
	return m.arena.alloc(v)
}

// load decodes a value word. ok is false only in arena mode when the slot
// was concurrently freed (the caller retries against the index).
func (m *Map[K, V]) load(w core.Value) (V, bool) {
	if m.direct {
		var v V
		switch any(v).(type) {
		case uint64:
			return any(uint64(w)).(V), true
		default:
			return any(w).(V), true
		}
	}
	return m.arena.get(w)
}

func (m *Map[K, V]) free(w core.Value) {
	if !m.direct {
		m.arena.free(w)
	}
}

// Get returns the value stored under k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	ek := m.enc(k)
	for {
		w, ok := m.set.Search(ek)
		if !ok {
			var zero V
			return zero, false
		}
		if v, valid := m.load(w); valid {
			return v, true
		}
		// The entry was deleted (and its slot recycled) between the
		// index search and the arena read; re-run the search.
	}
}

// Insert adds (k, v) if k is absent and reports whether it did.
func (m *Map[K, V]) Insert(k K, v V) bool {
	w := m.encVal(v)
	if m.set.Insert(m.enc(k), w) {
		return true
	}
	m.free(w)
	return false
}

// Put stores v under k, replacing any existing value (upsert). It reports
// whether the key was fresh. On algorithms without native Update (see
// Capabilities), replacement is remove-then-insert, so a concurrent Get of
// the same key can briefly miss; ht-clht-lb replaces in place with no
// window.
func (m *Map[K, V]) Put(k K, v V) bool {
	w := m.encVal(v)
	var replaced core.Value
	var had bool
	m.set.Update(m.enc(k), func(old core.Value, present bool) (core.Value, bool) {
		replaced, had = old, present
		return w, true
	})
	if had && replaced != w {
		m.free(replaced)
	}
	return !had
}

// GetOrInsert returns the existing value for k, or stores and returns v.
func (m *Map[K, V]) GetOrInsert(k K, v V) (V, bool) {
	ek := m.enc(k)
	w := m.encVal(v)
	for {
		got, inserted := m.set.GetOrInsert(ek, w)
		if inserted {
			return v, true
		}
		if gv, valid := m.load(got); valid {
			m.free(w)
			return gv, false
		}
		// The incumbent was deleted under us; try to insert again.
	}
}

// updState carries one Update call's mutable state in a single heap
// object: the callback is a method value over it, so the call costs two
// allocations (state + method value) instead of one boxed cell per
// captured variable — mutations are the facade's hottest write path.
type updState[K IntKey, V any] struct {
	m             *Map[K, V]
	f             func(old V, present bool) (V, bool)
	slotW         core.Value
	slotAllocated bool
	lastV         V
	replaced      core.Value
	had           bool
}

func (s *updState[K, V]) step(old core.Value, ok bool) (core.Value, bool) {
	m := s.m
	var ov V
	if ok {
		ov, _ = m.load(old) // a stale read only happens on a
		// speculative invocation whose result is discarded
	}
	nv, keep := s.f(ov, ok)
	s.lastV = nv
	s.replaced, s.had = old, ok
	if !keep {
		return 0, false
	}
	if m.direct {
		return m.encVal(nv), true
	}
	if !s.slotAllocated {
		s.slotW = m.arena.alloc(nv)
		s.slotAllocated = true
	} else {
		m.arena.set(s.slotW, nv) // still private: not yet published
	}
	return s.slotW, true
}

// Update atomically transforms the entry for k: f receives the current
// value (present reports existence) and returns the new value and whether
// the key should remain present. It returns the value after the update and
// the resulting presence. f must be pure and must not call back into the
// map: it may run more than once, and with native algorithms it runs under
// the structure's own lock.
func (m *Map[K, V]) Update(k K, f func(old V, present bool) (V, bool)) (V, bool) {
	st := updState[K, V]{m: m, f: f}
	_, present := m.set.Update(m.enc(k), st.step)
	if present {
		if st.had {
			m.free(st.replaced) // the fresh slot replaced the old word
		}
		return st.lastV, true
	}
	if st.had {
		m.free(st.replaced) // the update removed the entry
	}
	if st.slotAllocated {
		m.free(st.slotW) // allocated on a path that ultimately removed
	}
	var zero V
	return zero, false
}

// Delete removes k, returning the removed value.
func (m *Map[K, V]) Delete(k K) (V, bool) {
	w, ok := m.set.Remove(m.enc(k))
	if !ok {
		var zero V
		return zero, false
	}
	v, _ := m.load(w) // we own w now; it cannot be recycled under us
	m.free(w)
	return v, true
}

// Len counts the entries. Like Set.Size: linear time, quiescent use.
func (m *Map[K, V]) Len() int { return m.set.Size() }

// ForEach enumerates entries until yield returns false. Entries deleted
// concurrently may be skipped; no entry is yielded with a recycled value.
func (m *Map[K, V]) ForEach(yield func(K, V) bool) {
	m.set.ForEach(func(k core.Key, w core.Value) bool {
		v, valid := m.load(w)
		if !valid {
			return true // deleted under the scan
		}
		return yield(m.dec(k), v)
	})
}

// Snapshot enumerates entries through the backing structure's
// consistent-cut traversal (core.Snapshotter) and reports whether that
// traversal is the structure's own single-walk cut (native == true) or the
// ForEach fallback. Each yielded entry was live at some instant during the
// call; entries deleted under the scan are skipped, exactly as in ForEach.
func (m *Map[K, V]) Snapshot(yield func(K, V) bool) bool {
	sn, native := core.SnapshotterOf(m.raw)
	sn.Snapshot(func(k core.Key, w core.Value) bool {
		v, valid := m.load(w)
		if !valid {
			return true // deleted under the scan
		}
		return yield(m.dec(k), v)
	})
	return native
}

// NativeOrder reports whether the backing structure enumerates in key order
// itself; when false, Range/Min/Max snapshot and sort (O(n log n)). A map
// built with Sharded(n > 1) is never natively ordered.
func (m *Map[K, V]) NativeOrder() bool { return m.native }

// NumShards reports how many independent structure instances back the map:
// n for a map built with Sharded(n > 1), otherwise 1.
func (m *Map[K, V]) NumShards() int { return core.NumShards(m.raw) }

// RecycleStats returns the backing structure's SSMEM allocator counters —
// summed across shards when the map is sharded — and a zero Stats when the
// structure was built without recycling (or does not support it).
func (m *Map[K, V]) RecycleStats() ssmem.Stats {
	if r, ok := m.raw.(core.Recycler); ok {
		return r.RecycleStats()
	}
	return ssmem.Stats{}
}

// Range yields the entries with keys in [lo, hi] in ascending key order and
// returns how many were yielded.
func (m *Map[K, V]) Range(lo, hi K, yield func(K, V) bool) int {
	if hi < lo {
		return 0
	}
	n := 0
	m.ord.Range(m.enc(lo), m.enc(hi), func(k core.Key, w core.Value) bool {
		v, valid := m.load(w)
		if !valid {
			return true
		}
		n++
		return yield(m.dec(k), v)
	})
	return n
}

// Min returns the smallest-keyed entry.
func (m *Map[K, V]) Min() (K, V, bool) {
	for {
		k, w, ok := m.ord.Min()
		if !ok {
			var zk K
			var zv V
			return zk, zv, false
		}
		if v, valid := m.load(w); valid {
			return m.dec(k), v, true
		}
	}
}

// Max returns the largest-keyed entry.
func (m *Map[K, V]) Max() (K, V, bool) {
	for {
		k, w, ok := m.ord.Max()
		if !ok {
			var zk K
			var zv V
			return zk, zv, false
		}
		if v, valid := m.load(w); valid {
			return m.dec(k), v, true
		}
	}
}

// --- value arena ---

// Arena word layout: [ gen:32 | shard:4 | slot:28 ]. The generation tag
// makes slot recycling ABA-safe: free bumps the generation, so a handle to
// a recycled slot no longer matches and readers retry via the index.
const (
	arenaShards   = 16
	arenaSlotBits = 28
	arenaShardSh  = arenaSlotBits
	arenaGenSh    = 32
)

type arenaSlot[V any] struct {
	gen uint32
	val V
}

type arenaShard[V any] struct {
	mu    sync.RWMutex
	slots []arenaSlot[V]
	free  []uint32
}

type mapArena[V any] struct {
	shards [arenaShards]arenaShard[V]
	next   atomic.Uint32
}

func (a *mapArena[V]) alloc(v V) core.Value {
	sh := uint64(a.next.Add(1)) % arenaShards
	s := &a.shards[sh]
	s.mu.Lock()
	var idx uint32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		if len(s.slots) >= 1<<arenaSlotBits {
			s.mu.Unlock()
			panic("ascylib: value arena shard exhausted")
		}
		idx = uint32(len(s.slots))
		s.slots = append(s.slots, arenaSlot[V]{})
	}
	s.slots[idx].val = v
	gen := s.slots[idx].gen
	s.mu.Unlock()
	return core.Value(uint64(gen)<<arenaGenSh | sh<<arenaShardSh | uint64(idx))
}

func (a *mapArena[V]) locate(w core.Value) (*arenaShard[V], uint32, uint32) {
	sh := (uint64(w) >> arenaShardSh) & (arenaShards - 1)
	idx := uint32(uint64(w) & (1<<arenaSlotBits - 1))
	gen := uint32(uint64(w) >> arenaGenSh)
	return &a.shards[sh], idx, gen
}

func (a *mapArena[V]) get(w core.Value) (V, bool) {
	s, idx, gen := a.locate(w)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(idx) >= len(s.slots) || s.slots[idx].gen != gen {
		var zero V
		return zero, false
	}
	return s.slots[idx].val, true
}

// set overwrites a slot the caller owns (allocated, not yet published).
func (a *mapArena[V]) set(w core.Value, v V) {
	s, idx, _ := a.locate(w)
	s.mu.Lock()
	s.slots[idx].val = v
	s.mu.Unlock()
}

func (a *mapArena[V]) free(w core.Value) {
	s, idx, gen := a.locate(w)
	s.mu.Lock()
	if int(idx) < len(s.slots) && s.slots[idx].gen == gen {
		var zero V
		s.slots[idx].gen++ // invalidate outstanding handles
		s.slots[idx].val = zero
		s.free = append(s.free, idx)
	}
	s.mu.Unlock()
}
