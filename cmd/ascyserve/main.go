// Command ascyserve serves an ASCY-backed store over the memcached text
// protocol. Any registered algorithm can front the wire, so the whole
// capability matrix is servable:
//
//	ascyserve                                  # CLHT-LB on :11211
//	ascyserve -algo ht-clht-lf -addr :11300
//	ascyserve -algo sl-fraser-opt              # a skip list speaking memcached
//	ascyserve -algo ll-lazy -shards 8          # keyspace split over 8 lazy lists
//	ascyserve -addr 127.0.0.1:0 -addrfile /tmp/a.addr   # ephemeral port for scripts
//
// The server speaks get/gets (multi-key), set/add/replace/cas, delete,
// incr/decr, stats, version, flush_all, and quit, with per-connection
// buffering and request pipelining. Drive it with any memcached client, or
// with the repo's own load generator:
//
//	ascybench loadgen -addr 127.0.0.1:11211 -duration 5s -out BENCH_server.json
//
// On SIGINT/SIGTERM the server drains connections and prints its stats.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":11211", "listen address (port 0 picks an ephemeral port)")
		algo     = flag.String("algo", "ht-clht-lb", "backing algorithm (see `ascybench list`)")
		capacity = flag.Int("capacity", 1<<16, "structure capacity (hash-table buckets, total across shards)")
		shards   = flag.Int("shards", 1, "partition the keyspace across this many independent structure instances")
		ordered  = flag.Bool("ordered", false, "order-preserving keyspace: serve mrange/mmin/mmax (lexicographic scans); shards become contiguous key ranges (best with a sorted structure, e.g. -algo sl-fraser-opt)")
		accept   = flag.Int("accept", 0, "sharded-accept workers (0 = GOMAXPROCS, capped at 8)")
		reuse    = flag.Bool("reuseport", false, "bind one SO_REUSEPORT listener per accept worker (kernel-sharded accept queues; falls back to one shared listener where unsupported)")
		cpu      = flag.Int("cpu", 0, "cap GOMAXPROCS for the whole process (0 keeps the runtime default) — pins the server's core budget for scaling experiments")
		maxItem  = flag.Int("maxitem", server.DefaultMaxItemSize, "maximum value size in bytes")
		maxBatch = flag.Int("maxbatch", server.DefaultMaxBatch, "max pipelined requests executed per store pin (1 disables batching)")
		idle     = flag.Duration("idletimeout", 0, "reclaim connections silent for this long (0 = server default of 5m, negative disables)")
		maxconns = flag.Int("maxconns", 0, "cap concurrently open connections; extra dialers get SERVER_ERROR busy and are closed (0 = unlimited)")
		drain    = flag.Duration("drain", 5*time.Second, "on SIGINT/SIGTERM, let in-flight pipelined work finish for up to this long before closing (0 closes immediately)")
		snapPath = flag.String("snapshot", "", "snapshot file path: load on boot (warm restart), snapshot on drain and on the msnap verb, and — with -snapshotinterval — in the background; crash-safe (temp+fsync+rename)")
		snapIntv = flag.Duration("snapshotinterval", 0, "background snapshot period (0 disables the ticker; requires -snapshot)")
		panicKey = flag.String("chaospanickey", "", "chaos harness: a get of exactly this key panics the handler, exercising per-connection panic isolation (never set in production)")
		addrFile = flag.String("addrfile", "", "write the bound address to this file (for scripts)")
		quiet    = flag.Bool("quiet", false, "suppress the startup banner and shutdown stats")
	)
	flag.Parse()

	if *cpu > 0 {
		runtime.GOMAXPROCS(*cpu)
	}
	if _, ok := core.Get(*algo); !ok {
		fmt.Fprintf(os.Stderr, "ascyserve: unknown algorithm %q; pick one of:\n", *algo)
		for _, a := range core.All() {
			if a.Safe {
				fmt.Fprintf(os.Stderr, "  %s\n", a.Name)
			}
		}
		os.Exit(2)
	}

	s, err := server.New(server.Config{
		Addr:             *addr,
		Algo:             *algo,
		Capacity:         *capacity,
		Shards:           *shards,
		Ordered:          *ordered,
		AcceptWorkers:    *accept,
		ReusePort:        *reuse,
		MaxItemSize:      *maxItem,
		MaxBatch:         *maxBatch,
		IdleTimeout:      *idle,
		MaxConns:         *maxconns,
		ChaosPanicKey:    *panicKey,
		SnapshotPath:     *snapPath,
		SnapshotInterval: *snapIntv,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ascyserve:", err)
		os.Exit(1)
	}
	if err := s.Listen(); err != nil {
		fmt.Fprintln(os.Stderr, "ascyserve:", err)
		os.Exit(1)
	}
	if !*quiet {
		extra := ""
		if s.ReusePortActive() {
			extra = ", reuseport"
		}
		if *ordered {
			extra += ", ordered"
		}
		fmt.Printf("ascyserve: %s serving %s (%d shard(s)%s) on %s\n", server.Version, *algo, s.Store().Shards(), extra, s.Addr())
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(s.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ascyserve:", err)
			s.Close()
			os.Exit(1)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "ascyserve:", err)
			os.Exit(1)
		}
	case <-sig:
		// Drain: stop accepting, let in-flight pipelined batches finish
		// within the budget, then close whatever remains. A second signal
		// during the drain closes immediately.
		if *drain > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			go func() {
				<-sig
				cancel()
			}()
			s.Shutdown(ctx)
			cancel()
		} else {
			s.Close()
		}
		<-done
	}
	// The final stats line (stderr, -quiet included) is emitted by the
	// server itself on Close — see Server.emitFinalStats — so embedded and
	// test users get the same last word a chaos harness greps for here.
	if !*quiet {
		fmt.Println("ascyserve: shutdown stats:")
		for _, kv := range s.Stats() {
			fmt.Printf("  %-18s %s\n", kv[0], kv[1])
		}
	}
}
