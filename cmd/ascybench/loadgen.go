package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

// runLoadgen implements the `ascybench loadgen` subcommand: a closed-loop
// pipelined load generator for memcached-protocol servers. Two modes:
//
//   - -addr host:port drives an already-running server (ascyserve or real
//     memcached); the served algorithm is read from its stats.
//   - -algo <name>|all boots ascyserve in-process on a loopback ephemeral
//     port and drives that; "all" sweeps every servable registry entry,
//     producing one BENCH run per algorithm.
//
// Results go to stdout and, machine-readably, to -out (BENCH_server.json).
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "", "target server address; empty boots an in-process server")
		algo      = fs.String("algo", "ht-clht-lb", "self-serve algorithm, or \"all\" for the sweep (ignored with -addr)")
		conns     = fs.Int("conns", 4, "client connections")
		pipeline  = fs.Int("pipeline", 8, "pipelined requests in flight per connection")
		duration  = fs.Duration("duration", 2*time.Second, "measured window per run")
		keys      = fs.Int("keys", 4096, "hot keyspace size (preloaded; draws span twice this)")
		valueSize = fs.Int("valuesize", 64, "value size in bytes")
		update    = fs.Int("update", 10, "update percentage (sets + deletes)")
		rangePct  = fs.Int("rangepct", 0, "multi-get percentage (the wire analog of range scans)")
		multiGet  = fs.Int("multiget", 10, "keys per multi-get batch")
		sample    = fs.Int("sample", 4, "sample the latency of every n-th request")
		seed      = fs.Uint64("seed", 1, "workload seed")
		out       = fs.String("out", "BENCH_server.json", "machine-readable output file (empty disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := server.LoadgenConfig{
		Conns:       *conns,
		Pipeline:    *pipeline,
		Duration:    *duration,
		Keys:        *keys,
		ValueSize:   *valueSize,
		Mix:         workload.Mix{UpdatePct: *update, RangePct: *rangePct},
		MultiGet:    *multiGet,
		SampleEvery: *sample,
		Seed:        *seed,
	}

	var runs []server.LoadgenResult
	if *addr != "" {
		cfg.Addr = *addr
		res, err := server.RunLoadgen(cfg)
		if err != nil {
			return err
		}
		printLoadgen(res)
		runs = append(runs, res)
	} else {
		algos := []string{*algo}
		if *algo == "all" {
			algos = algos[:0]
			for _, a := range core.All() {
				if a.Safe {
					algos = append(algos, a.Name)
				}
			}
		}
		for _, name := range algos {
			res, err := selfServe(name, cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			printLoadgen(res)
			runs = append(runs, res)
		}
	}
	if *out != "" {
		if err := server.WriteBench(*out, cfg, runs); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d run(s))\n", *out, len(runs))
	}
	return nil
}

// selfServe boots an in-process server for one algorithm, drives it, and
// tears it down.
func selfServe(algo string, cfg server.LoadgenConfig) (server.LoadgenResult, error) {
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", Algo: algo})
	if err != nil {
		return server.LoadgenResult{}, err
	}
	if err := s.Listen(); err != nil {
		return server.LoadgenResult{}, err
	}
	done := make(chan struct{})
	go func() { s.Serve(); close(done) }()
	cfg.Addr = s.Addr().String()
	res, rerr := server.RunLoadgen(cfg)
	s.Close()
	<-done
	return res, rerr
}

// printLoadgen renders one run for the terminal.
func printLoadgen(r server.LoadgenResult) {
	algo := r.Algo
	if algo == "" {
		algo = "(unknown algo)"
	}
	fmt.Printf("%s: %d conns x %d deep, %v\n", algo, r.Cfg.Conns, r.Cfg.Pipeline, r.Elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput: %.0f req/s (%d requests)\n", r.Throughput(), r.Ops)
	fmt.Printf("  gets: %d (%.1f%% miss), sets: %d, deletes: %d", r.Gets, 100*r.MissRate(), r.Sets, r.Deletes)
	if r.MGets > 0 {
		fmt.Printf(", multi-gets: %d (%.1f keys/batch)", r.MGets, float64(r.MGetKeys)/float64(r.MGets))
	}
	fmt.Println()
	if all, ok := r.Latency["all"]; ok && all.N > 0 {
		j := all.JSON()
		fmt.Printf("  latency: mean %.0fus, p50 %.0fus, p99 %.0fus (n=%d sampled)\n",
			j.MeanUS, j.P50US, j.P99US, j.N)
	}
	fmt.Printf("  client: %.2f allocs/op, gc pause %v (%d cycles)\n",
		r.ClientAllocsPerOp, r.ClientGCPause.Round(time.Microsecond), r.ClientNumGC)
}
