package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

// runLoadgen implements the `ascybench loadgen` subcommand: a closed-loop
// pipelined load generator for memcached-protocol servers. Two modes:
//
//   - -addr host:port drives an already-running server (ascyserve or real
//     memcached); the served algorithm is read from its stats.
//   - -algo <name>|all boots ascyserve in-process on a loopback ephemeral
//     port and drives that; "all" sweeps every servable registry entry,
//     producing one BENCH run per algorithm.
//
// A third mode scales out: -cluster addr1,addr2,... drives N already-running
// servers as one consistent-hashed keyspace (see internal/cluster) — each
// generator connection opens one pipelined connection per node and routes
// keys by rendezvous hashing, so no server knows the cluster exists.
// Semicolon-separated groups (e.g. "-cluster a;a,b;a,b,c,d") run one
// measurement per group: the 1→N process scale-out sweep in a single
// invocation. Cluster runs report per-node served requests and achieved
// batch depth alongside the aggregate.
//
// In self-serve mode, -shards takes a comma-separated list of keyspace
// partition counts (e.g. -shards 1,2,4,8) and produces one run per
// algorithm x shard count at identical client concurrency — the sharding
// experiment: how far does splitting one hot structure into S cool ones
// carry each family's server throughput.
//
// -pipeline likewise takes a comma-separated list of closed-loop window
// depths (e.g. -pipeline 1,8,32,64), one run each — the batching
// experiment: depth 1 is the strict request/response baseline where every
// command pays its own pin, epoch brackets, clock read, and flush, and
// deeper windows hand the server ever larger free batches to amortize
// those over. Each run reports the server-side achieved batch depth from
// its stats (batch_depth_avg), so the document shows what the server
// actually got, not just what the client offered.
//
// Results go to stdout and, machine-readably, to -out (BENCH_server.json).
// -cpuprofile/-memprofile capture pprof profiles of the whole process over
// the driving window (in self-serve mode that includes the server — the
// point: the next server-side hot spot is findable without editing code).
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "", "target server address; empty boots an in-process server")
		clusterArg = fs.String("cluster", "", "comma-separated node addresses to drive as one consistent-hashed cluster; semicolon-separated groups sweep (e.g. \"a;a,b;a,b,c,d\")")
		degraded   = fs.String("degraded", "fail", "cluster degraded-mode policy when a node is down: \"fail\" answers SERVER_ERROR node down, \"miss\" treats reads as misses (writes always fail fast)")
		tolerate   = fs.Bool("tolerate", false, "keep driving through degraded responses (node outages) instead of failing the run; counts them in the BENCH artifact (chaos runs)")
		flush      = fs.Bool("flush", false, "flush_all before each run (start every run from an empty store)")
		dialWait   = fs.Duration("dialtimeout", 5*time.Second, "connect retry window (booting servers are retried with backoff until this elapses)")
		algo       = fs.String("algo", "ht-clht-lb", "self-serve algorithm(s), comma-separated, or \"all\" for the sweep (ignored with -addr)")
		cpuList    = fs.String("cpu", "", "comma-separated GOMAXPROCS values, one full sweep each (e.g. 1,2,4; empty keeps the current setting) — the multi-core scaling axis")
		shardList  = fs.String("shards", "1", "comma-separated self-serve shard counts, one run each (ignored with -addr)")
		pipeList   = fs.String("pipeline", "8", "comma-separated pipeline depths (requests in flight per connection), one run each")
		conns      = fs.Int("conns", 4, "client connections")
		duration   = fs.Duration("duration", 2*time.Second, "measured window per run")
		keys       = fs.Int("keys", 4096, "hot keyspace size (preloaded; draws span twice this)")
		valueSize  = fs.Int("valuesize", 64, "value size in bytes")
		update     = fs.Int("update", 10, "update percentage (sets + deletes)")
		rangePct   = fs.Int("rangepct", 0, "range-scan percentage (mrange on ordered endpoints, multi-get fallback otherwise)")
		scanMix    = fs.String("scanmix", "", "comma-separated range-scan percentages, one run each (the scan-mix sweep; overrides -rangepct)")
		multiGet   = fs.Int("multiget", 10, "keys per multi-get fallback batch")
		scanSpan   = fs.Int("scanspan", 0, "key-index span (and limit) of each mrange scan (0 = -multiget, keeping scan and fallback payloads comparable)")
		keyDist    = fs.String("keydist", "uniform", "key draw distribution: \"uniform\" or \"zipf:<s>\" with skew s > 1 (e.g. zipf:1.2)")
		ordered    orderedFlag
		sample     = fs.Int("sample", 4, "sample the latency of every n-th request")
		seed       = fs.Uint64("seed", 1, "workload seed")
		out        = fs.String("out", "BENCH_server.json", "machine-readable output file (empty disables)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the whole loadgen process (incl. the in-process server in self-serve mode) to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile taken after the last run to this file")
	)
	fs.Var(&ordered, "ordered", "self-serve with the order-preserving keyspace so mrange is served for real: true, false, or \"auto\" (ordered only where the structure scans natively — hash tables stay on their hash finalizer and range draws fall back to multi-get, so one invocation sweeps fallback vs native; ignored with -addr/-cluster)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pipelines, err := parseIntList("-pipeline", *pipeList)
	if err != nil {
		return err
	}
	// The scan-mix sweep: one run per range percentage. Without -scanmix the
	// "sweep" is the single -rangepct point, so the run loops below need no
	// special casing.
	scanMixes := []int{*rangePct}
	if *scanMix != "" {
		if scanMixes, err = parsePctList("-scanmix", *scanMix); err != nil {
			return err
		}
	}
	cfg := server.LoadgenConfig{
		Conns:            *conns,
		Duration:         *duration,
		Keys:             *keys,
		ValueSize:        *valueSize,
		Mix:              workload.Mix{UpdatePct: *update, RangePct: *rangePct},
		MultiGet:         *multiGet,
		ScanSpan:         *scanSpan,
		KeyDist:          *keyDist,
		SampleEvery:      *sample,
		Seed:             *seed,
		FlushBefore:      *flush,
		DialTimeout:      *dialWait,
		TolerateDegraded: *tolerate,
	}
	if *clusterArg != "" && *addr != "" {
		return fmt.Errorf("-cluster and -addr are mutually exclusive")
	}
	var policy cluster.DegradedPolicy
	switch *degraded {
	case "fail":
		policy = cluster.DegradedFailFast
	case "miss":
		policy = cluster.DegradedMissReads
	default:
		return fmt.Errorf("-degraded %q: want \"fail\" or \"miss\"", *degraded)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "loadgen: memprofile:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "loadgen: memprofile:", err)
			}
		}()
	}

	var runs []server.LoadgenResult
	// runSweep drives every configured (mode, algo, shards, pipeline)
	// combination once at the current GOMAXPROCS, appending to runs. The
	// -cpu flag wraps it: one full sweep per core count, outermost, so the
	// BENCH document groups cleanly into scaling curves.
	runSweep := func() error {
		if *clusterArg != "" {
			for _, group := range strings.Split(*clusterArg, ";") {
				var nodes []string
				for _, a := range strings.Split(group, ",") {
					if a = strings.TrimSpace(a); a != "" {
						nodes = append(nodes, a)
					}
				}
				if len(nodes) == 0 {
					continue
				}
				cfg.Addr = strings.Join(nodes, ",")
				cfg.Dial = func() (server.Conn, error) {
					return cluster.DialOptions(cluster.Options{
						DialTimeout: *dialWait,
						Policy:      policy,
					}, nodes...)
				}
				for _, depth := range pipelines {
					cfg.Pipeline = depth
					for _, rp := range scanMixes {
						cfg.Mix.RangePct = rp
						res, err := server.RunLoadgen(cfg)
						if err != nil {
							return fmt.Errorf("cluster %s: %w", cfg.Addr, err)
						}
						printLoadgen(res)
						runs = append(runs, res)
					}
				}
			}
		} else if *addr != "" {
			cfg.Addr = *addr
			for _, depth := range pipelines {
				cfg.Pipeline = depth
				for _, rp := range scanMixes {
					cfg.Mix.RangePct = rp
					res, err := server.RunLoadgen(cfg)
					if err != nil {
						return err
					}
					printLoadgen(res)
					runs = append(runs, res)
				}
			}
		} else {
			shardCounts, err := parseIntList("-shards", *shardList)
			if err != nil {
				return err
			}
			var algos []string
			if *algo == "all" {
				for _, a := range core.All() {
					if a.Safe {
						algos = append(algos, a.Name)
					}
				}
			} else {
				for _, name := range strings.Split(*algo, ",") {
					if name = strings.TrimSpace(name); name != "" {
						algos = append(algos, name)
					}
				}
				if len(algos) == 0 {
					return fmt.Errorf("-algo %q names no algorithms", *algo)
				}
			}
			for _, name := range algos {
				for _, shards := range shardCounts {
					for _, depth := range pipelines {
						cfg.Pipeline = depth
						for _, rp := range scanMixes {
							cfg.Mix.RangePct = rp
							res, err := selfServe(name, shards, ordered.forAlgo(name), cfg)
							if err != nil {
								return fmt.Errorf("%s (shards=%d, pipeline=%d): %w", name, shards, depth, err)
							}
							printLoadgen(res)
							runs = append(runs, res)
						}
					}
				}
			}
		}
		return nil
	}
	if *cpuList == "" {
		if err := runSweep(); err != nil {
			return err
		}
	} else {
		cpuCounts, err := parseIntList("-cpu", *cpuList)
		if err != nil {
			return err
		}
		if err := server.RunCPUSweep(cpuCounts, func(int) error { return runSweep() }); err != nil {
			return err
		}
	}
	if *out != "" {
		// The sweep loops mutate cfg.Mix.RangePct; each run records its own
		// range_pct, so the document's config keeps the -rangepct baseline.
		cfg.Mix.RangePct = *rangePct
		if err := server.WriteBench(*out, cfg, runs); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d run(s))\n", *out, len(runs))
	}
	return nil
}

// parseIntList parses a comma-separated list of positive integers (the
// -shards and -pipeline sweep flags).
func parseIntList(name, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad %s entry %q (want positive integers, e.g. 1,2,4,8)", name, part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out, nil
}

// parsePctList parses a comma-separated list of percentages (0–100); the
// -scanmix sweep flag, where 0 is a legitimate baseline point.
func parsePctList(name, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 100 {
			return nil, fmt.Errorf("bad %s entry %q (want percentages 0-100, e.g. 0,5,20)", name, part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s names no percentages", name)
	}
	return out, nil
}

// orderedFlag is the -ordered flag: a boolean flag (bare -ordered works)
// that additionally accepts "auto", which lights the ordered keyspace only
// for algorithms whose structure scans natively (core NativeRange). Auto is
// how one invocation produces the fallback-vs-native scan comparison: hash
// tables boot unordered and their range draws fall back to multi-get
// (flagged scan_fallback in the artifact), sorted structures boot ordered
// and serve real mrange.
type orderedFlag struct {
	mode string // "", "true", or "auto"
}

func (o *orderedFlag) String() string   { return o.mode }
func (o *orderedFlag) IsBoolFlag() bool { return true }

func (o *orderedFlag) Set(s string) error {
	switch s {
	case "true", "1", "t", "yes":
		o.mode = "true"
	case "false", "0", "f", "no":
		o.mode = ""
	case "auto":
		o.mode = "auto"
	default:
		return fmt.Errorf("want true, false, or auto, not %q", s)
	}
	return nil
}

// forAlgo resolves the flag for one self-served algorithm.
func (o *orderedFlag) forAlgo(name string) bool {
	switch o.mode {
	case "true":
		return true
	case "auto":
		if a, ok := core.Get(name); ok {
			return a.Caps().NativeRange
		}
	}
	return false
}

// selfServe boots an in-process server for one algorithm and shard count,
// drives it, and tears it down.
func selfServe(algo string, shards int, ordered bool, cfg server.LoadgenConfig) (server.LoadgenResult, error) {
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", Algo: algo, Shards: shards, Ordered: ordered})
	if err != nil {
		return server.LoadgenResult{}, err
	}
	if err := s.Listen(); err != nil {
		return server.LoadgenResult{}, err
	}
	done := make(chan struct{})
	go func() { s.Serve(); close(done) }()
	cfg.Addr = s.Addr().String()
	res, rerr := server.RunLoadgen(cfg)
	s.Close()
	<-done
	return res, rerr
}

// printLoadgen renders one run for the terminal.
func printLoadgen(r server.LoadgenResult) {
	algo := r.Algo
	if algo == "" {
		algo = "(unknown algo)"
	}
	if r.Shards > 0 {
		algo += fmt.Sprintf(" [%d shard(s)]", r.Shards)
	}
	fmt.Printf("%s: %d conns x %d deep, cpus=%d, %v\n", algo, r.Cfg.Conns, r.Cfg.Pipeline, r.CPUs, r.Elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput: %.0f req/s (%d requests)\n", r.Throughput(), r.Ops)
	fmt.Printf("  gets: %d (%.1f%% miss), sets: %d, deletes: %d", r.Gets, 100*r.MissRate(), r.Sets, r.Deletes)
	if r.MGets > 0 {
		fmt.Printf(", multi-gets: %d (%.1f keys/batch)", r.MGets, float64(r.MGetKeys)/float64(r.MGets))
	}
	if r.Scans > 0 {
		fmt.Printf(", scans: %d (%.1f keys/scan)", r.Scans, float64(r.ScanKeys)/float64(r.Scans))
	}
	fmt.Println()
	if r.ScanFallback {
		fmt.Println("  scans: multi-get FALLBACK (endpoint not ordered; counted under multi-gets)")
	}
	if r.BatchDepthAvg > 0 {
		fmt.Printf("  server batch depth: %.2f avg (achieved, from stats)\n", r.BatchDepthAvg)
	}
	for i, nl := range r.NodeLoads {
		fmt.Printf("  node %d (%s): %d reqs, batch depth %.2f\n", i, nl.Addr, nl.Reqs, nl.BatchDepthAvg)
	}
	if r.NodeFailovers > 0 || r.DegradedMisses+r.DegradedErrors > 0 {
		fmt.Printf("  failover: %d failover(s), %d reconnect(s); degraded: %d miss(es), %d error(s)\n",
			r.NodeFailovers, r.NodeReconnects, r.DegradedMisses, r.DegradedErrors)
	}
	if all, ok := r.Latency["all"]; ok && all.N > 0 {
		j := all.JSON()
		fmt.Printf("  latency: mean %.0fus, p50 %.0fus, p99 %.0fus (n=%d sampled)\n",
			j.MeanUS, j.P50US, j.P99US, j.N)
	}
	fmt.Printf("  client: %.2f allocs/op, gc pause %v (%d cycles)\n",
		r.ClientAllocsPerOp, r.ClientGCPause.Round(time.Microsecond), r.ClientNumGC)
}
