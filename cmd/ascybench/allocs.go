package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// runAllocs implements the `ascybench allocs` subcommand: the allocation
// ledger of the library. For each algorithm it drives the standard mixed
// workload and reports process-wide heap allocations and bytes per
// operation, plus — where the structure recycles nodes through SSMEM —
// the allocator counters and reuse rate. Structures that support the
// Recycle knob are measured in both regimes so the delta is visible.
// Results go to stdout and, machine-readably, to -out (BENCH_allocs.json,
// schema ascylib/bench-allocs/v1); the committed file is the repository's
// allocation baseline, refreshed by this command.
func runAllocs(args []string) error {
	fs := flag.NewFlagSet("allocs", flag.ExitOnError)
	var (
		duration = fs.Duration("duration", 300*time.Millisecond, "measured window per run")
		threads  = fs.Int("threads", 0, "worker goroutines (0 = GOMAXPROCS, capped at 8)")
		initial  = fs.Int("initial", 1024, "initial structure size")
		update   = fs.Int("update", 10, "update percentage")
		seed     = fs.Uint64("seed", 42, "workload seed")
		algoList = fs.String("algos", "", "comma-separated algorithms (default: the alloc-ledger set)")
		out      = fs.String("out", "BENCH_allocs.json", "machine-readable output file (empty disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *threads <= 0 {
		*threads = runtime.GOMAXPROCS(0)
		if *threads > 8 {
			*threads = 8
		}
	}
	algos := allocLedgerAlgos()
	if *algoList != "" {
		algos = strings.Split(*algoList, ",")
	}

	var f AllocsFile
	f.Schema = AllocsSchema
	f.Config.DurationS = duration.Seconds()
	f.Config.Threads = *threads
	f.Config.Initial = *initial
	f.Config.UpdatePct = *update
	f.Config.Seed = *seed

	for _, name := range algos {
		a, ok := core.Get(name)
		if !ok {
			return fmt.Errorf("unknown algorithm %q", name)
		}
		if !a.Safe {
			continue
		}
		for _, recycle := range recycleModes(name) {
			run, err := allocRun(name, recycle, *initial, *update, *threads, *duration, *seed)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			printAllocRun(run)
			f.Runs = append(f.Runs, run)
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(&f, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d run(s))\n", *out, len(f.Runs))
	}
	return nil
}

// allocLedgerAlgos is the default measurement set: every structure that
// gained SSMEM recycling, the urcu pair (the paper's ASCY4 case study),
// the CLHT headliners, and one BST.
func allocLedgerAlgos() []string {
	return []string{
		"ll-lazy", "ll-harris", "ll-harris-opt", "ll-michael",
		"sl-fraser", "sl-fraser-opt", "sl-pugh",
		"ht-urcu", "ht-urcu-ssmem", "ht-clht-lb", "ht-clht-lf",
		"bst-tk",
	}
}

// recycleModes reports which Recycle settings are worth measuring for an
// algorithm: both regimes when the knob changes behaviour, just the
// default otherwise (probed via the Recycler interface, so it stays true
// as structures gain support).
func recycleModes(name string) []bool {
	// Natively recycling structures (ht-urcu-ssmem) show allocator
	// activity with the knob off; the knob adds nothing for them.
	if probeRecycles(name, false) {
		return []bool{false}
	}
	if probeRecycles(name, true) {
		return []bool{false, true}
	}
	return []bool{false}
}

func probeRecycles(name string, knob bool) bool {
	opts := []core.Option{}
	if knob {
		opts = append(opts, core.RecycleNodes(true))
	}
	s, err := core.New(name, opts...)
	if err != nil {
		return false
	}
	r, ok := s.(core.Recycler)
	if !ok {
		return false
	}
	// Several keys, so structures that recycle only a height class (the
	// skip lists recycle height-1 towers) still register activity.
	for k := core.Key(1); k <= 32; k++ {
		s.Insert(k, core.Value(k))
		s.Remove(k)
	}
	return r.RecycleStats().Allocs > 0
}

// allocRun executes one measured workload with allocation accounting.
func allocRun(algo string, recycle bool, initial, update, threads int, d time.Duration, seed uint64) (AllocsRun, error) {
	opts := []core.Option{core.Capacity(initial)}
	if recycle {
		opts = append(opts, core.RecycleNodes(true))
	}
	set, err := core.New(algo, opts...)
	if err != nil {
		return AllocsRun{}, err
	}
	cfg := workload.Config{
		Algorithm: algo,
		Options:   opts,
		Initial:   initial,
		UpdatePct: update,
		Threads:   threads,
		Duration:  d,
		Seed:      seed,
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res := workload.RunOn(set, cfg)
	runtime.ReadMemStats(&m1)

	run := AllocsRun{
		Algo:      algo,
		Recycle:   recycle,
		Ops:       res.Ops,
		Mops:      res.Mops(),
		GCPauseUS: float64(m1.PauseTotalNs-m0.PauseTotalNs) / 1e3,
		NumGC:     m1.NumGC - m0.NumGC,
	}
	if res.Ops > 0 {
		run.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(res.Ops)
		run.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(res.Ops)
	}
	if r, ok := set.(core.Recycler); ok {
		st := r.RecycleStats()
		if st.Allocs > 0 {
			run.RecycleStats = &RecycleJSON{
				Allocs:    st.Allocs,
				Frees:     st.Frees,
				Reused:    st.Reused,
				Collected: st.Collected,
				ReuseRate: st.ReuseRate(),
			}
		}
	}
	return run, nil
}

func printAllocRun(r AllocsRun) {
	mode := ""
	if r.Recycle {
		mode = " +recycle"
	}
	fmt.Printf("%-16s%-9s %8.2f allocs/op %9.1f B/op  %6.2f Mops/s  gc %6.0fus/%d",
		r.Algo, mode, r.AllocsPerOp, r.BytesPerOp, r.Mops, r.GCPauseUS, r.NumGC)
	if r.RecycleStats != nil {
		fmt.Printf("  reuse %.0f%%", 100*r.RecycleStats.ReuseRate)
	}
	fmt.Println()
}

// AllocsSchema identifies the BENCH_allocs.json layout.
const AllocsSchema = "ascylib/bench-allocs/v1"

// AllocsRun is one measured workload in machine-readable form.
type AllocsRun struct {
	Algo        string  `json:"algo"`
	Recycle     bool    `json:"recycle"`
	Ops         uint64  `json:"ops"`
	Mops        float64 `json:"mops"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	GCPauseUS   float64 `json:"gc_pause_us"`
	NumGC       uint32  `json:"num_gc"`
	// RecycleStats carries the SSMEM counters when the structure recycles
	// nodes (absent otherwise).
	RecycleStats *RecycleJSON `json:"recycle_stats,omitempty"`
}

// RecycleJSON is ssmem.Stats for the bench file.
type RecycleJSON struct {
	Allocs    uint64  `json:"allocs"`
	Frees     uint64  `json:"frees"`
	Reused    uint64  `json:"reused"`
	Collected uint64  `json:"collected"`
	ReuseRate float64 `json:"reuse_rate"`
}

// AllocsFile is the BENCH_allocs.json document.
type AllocsFile struct {
	Schema string `json:"schema"`
	Config struct {
		DurationS float64 `json:"duration_s"`
		Threads   int     `json:"threads"`
		Initial   int     `json:"initial"`
		UpdatePct int     `json:"update_pct"`
		Seed      uint64  `json:"seed"`
	} `json:"config"`
	Runs []AllocsRun `json:"runs"`
}
