// Command ascybench regenerates the tables and figures of the ASPLOS'15
// paper "Asynchronized Concurrency: The Secret to Scaling Concurrent Search
// Data Structures" on the local host.
//
// Usage:
//
//	ascybench list                  # capability matrix of the v2 surface
//	ascybench describe bst-tk       # one algorithm in detail
//	ascybench loadgen -addr 127.0.0.1:11211 -out BENCH_server.json
//	ascybench loadgen -algo all -duration 2s    # self-served per-algo sweep
//	ascybench allocs -out BENCH_allocs.json     # allocs/op + SSMEM reuse ledger
//	ascybench -list                 # Table 1: the algorithm catalogue
//	ascybench -fig fig2a            # one experiment (fig2a..fig2d, fig3..fig9, rangemix, summary)
//	ascybench -all                  # everything
//	ascybench -all -paper           # the paper's 5s x 11-rep protocol
//	ascybench -fig fig8 -threads 16 -duration 1s -reps 3
//	ascybench -bench ht-clht-lb -update 20 -initial 4096 -threads 8
//	ascybench -bench sl-fraser-opt -rangepct 10 -rangespan 100
//
// By default experiments run in quick mode (short runs, single repetition);
// -paper restores the paper's measurement protocol.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/ascy"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/workload"

	_ "repro" // register all implementations via the facade package
)

func main() {
	// Subcommands (the v2 registry surface) come before flag parsing so
	// the flag-based interface stays exactly as it was.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "list":
			printMatrix()
			return
		case "describe":
			if len(os.Args) < 3 {
				fmt.Fprintln(os.Stderr, "usage: ascybench describe <algorithm>")
				os.Exit(2)
			}
			if err := describeAlgorithm(os.Args[2]); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		case "loadgen":
			if err := runLoadgen(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "ascybench loadgen:", err)
				os.Exit(1)
			}
			return
		case "allocs":
			if err := runAllocs(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "ascybench allocs:", err)
				os.Exit(1)
			}
			return
		}
	}
	var (
		list     = flag.Bool("list", false, "print the algorithm catalogue (Table 1) and exit")
		fig      = flag.String("fig", "", "experiment id to run (fig2a..fig2d, fig3..fig9, summary)")
		all      = flag.Bool("all", false, "run every experiment")
		paper    = flag.Bool("paper", false, "use the paper's protocol: 5s runs, median of 11 reps")
		duration = flag.Duration("duration", 0, "override run duration")
		reps     = flag.Int("reps", 0, "override repetitions (median reported)")
		threads  = flag.Int("threads", 0, "override the reference thread count (paper: 20)")
		maxThr   = flag.Int("maxthreads", 0, "override the sweep maximum (default 2*GOMAXPROCS)")
		bench    = flag.String("bench", "", "ad-hoc benchmark of one algorithm")
		compl    = flag.Bool("compliance", false, "probe every algorithm for ASCY pattern compliance")
		initial  = flag.Int("initial", 1024, "ad-hoc: initial size")
		update   = flag.Int("update", 10, "ad-hoc: update percentage")
		rangePct = flag.Int("rangepct", 0, "ad-hoc: range-scan percentage")
		rangeSp  = flag.Uint64("rangespan", 100, "ad-hoc: keys per range scan")
		seed     = flag.Uint64("seed", 0, "workload seed")
		cpuList  = flag.String("cpu", "", "comma-separated GOMAXPROCS values (e.g. 1,2,4): run the requested experiment(s) once per value — the multi-core scaling axis")
	)
	flag.Parse()

	switch {
	case *list:
		printCatalogue()
		return
	case *compl:
		printCompliance()
		return
	case *bench == "" && *fig == "" && !*all:
		flag.Usage()
		os.Exit(2)
	}

	// runOnce executes the requested experiment(s) at the current
	// GOMAXPROCS; -cpu wraps it into a sweep, one full pass per core count.
	runOnce := func() error {
		if *bench != "" {
			runAdhoc(*bench, *initial, *update, *rangePct, *rangeSp, *threads, *duration, *seed)
			return nil
		}
		opts := harness.Quick(os.Stdout)
		if *paper {
			opts = harness.Paper(os.Stdout)
		}
		if *duration != 0 {
			opts.Duration = *duration
		}
		if *reps != 0 {
			opts.Reps = *reps
		}
		opts.Threads = *threads
		opts.MaxThreads = *maxThr
		opts.Seed = *seed

		if *all {
			harness.RunAll(opts)
			return nil
		}
		return harness.RunExperiment(*fig, opts)
	}

	if *cpuList == "" {
		if err := runOnce(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	cpus, err := parseIntList("-cpu", *cpuList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := server.RunCPUSweep(cpus, func(c int) error {
		fmt.Printf("=== GOMAXPROCS %d ===\n", c)
		return runOnce()
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func printCatalogue() {
	fmt.Println("ASCYLIB-Go algorithm catalogue (paper Table 1 + ASCY variants and new designs)")
	fmt.Println()
	for _, s := range core.Structures() {
		fmt.Printf("%s:\n", s)
		for _, a := range core.ByStructure(s) {
			tag := " "
			if a.ASCY {
				tag = "*"
			}
			safe := ""
			if !a.Safe {
				safe = " [async bound: unsynchronized]"
			}
			fmt.Printf("  %s %-16s %-4s %s%s\n", tag, a.Name, a.Class, a.Desc, safe)
		}
		fmt.Println()
	}
	fmt.Println("* = ASCY-compliant (re-engineered or designed from scratch with the patterns)")
}

func printCompliance() {
	fmt.Println("ASCY compliance probe (concurrent, seeded; see internal/ascy)")
	fmt.Printf("%-16s %6s %6s %16s %18s\n", "algorithm", "ASCY1", "ASCY3", "restarts/update", "coh/succ-update")
	for _, a := range core.All() {
		if !a.Safe {
			continue
		}
		r, err := ascy.CheckRegistered(a.Name, ascy.Probe{})
		if err != nil {
			fmt.Printf("%-16s probe failed: %v\n", a.Name, err)
			continue
		}
		mark := func(b bool) string {
			if b {
				return "yes"
			}
			return "NO"
		}
		fmt.Printf("%-16s %6s %6s %16.4f %18.2f\n",
			a.Name, mark(r.ASCY1), mark(r.ASCY3), r.ParseRestartsPerUpdate, r.CoherencePerSuccUpdate)
	}
	fmt.Println("\nASCY2/ASCY4 are quantitative: compare restarts/update and coh/succ-update against the async baselines.")
}

func runAdhoc(algo string, initial, update, rangePct int, rangeSpan uint64, threads int, duration time.Duration, seed uint64) {
	if threads == 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if duration == 0 {
		duration = time.Second
	}
	cfg := workload.Config{
		Algorithm: algo,
		Options:   []core.Option{core.Capacity(initial)},
		Initial:   initial,
		UpdatePct: update,
		RangePct:  rangePct,
		RangeSpan: rangeSpan,
		Threads:   threads,
		Duration:  duration,
		Seed:      seed,
	}
	res, err := workload.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d elem, %d%% updates, %d%% scans, %d threads, %v\n",
		algo, initial, update, rangePct, threads, duration)
	fmt.Printf("  throughput: %.3f Mops/s (%d ops)\n", res.Mops(), res.Ops)
	fmt.Printf("  successful updates: %d, final size: %d\n", res.SuccUpdates, res.FinalSize)
	fmt.Printf("  coherence events/op: %.2f\n", res.CoherencePerOp())
	if res.RangeOps > 0 {
		fmt.Printf("  range scans: %d (%.1f items/scan)\n", res.RangeOps, res.ItemsPerScan())
	}
}

// printMatrix renders the registry's capability matrix: what each algorithm
// serves natively on the v2 surface and what falls back to the generic
// paths in core.
func printMatrix() {
	fmt.Println("v2 capability matrix (native = implemented in the structure; fallback = generic path in core)")
	fmt.Println()
	fmt.Printf("%-16s %-5s %-5s %-5s %-8s %-9s %-9s %-9s %-9s %-9s %-9s\n",
		"algorithm", "class", "safe", "ascy", "ordered", "update", "getorins", "foreach", "range", "batch", "wirescan")
	fmt.Println(strings.Repeat("-", 106))
	nf := func(native bool) string {
		if native {
			return "native"
		}
		return "fallback"
	}
	for _, s := range core.Structures() {
		for _, a := range core.ByStructure(s) {
			c := a.Caps()
			yn := func(b bool) string {
				if b {
					return "yes"
				}
				return "-"
			}
			// wirescan is the served cost of an -ordered mrange: a sorted
			// structure enumerates the range in place, anything else pays a
			// snapshot+sort per scan (correct, but O(shard) not O(result)).
			ws := "snapshot"
			if c.NativeRange {
				ws = "native"
			}
			fmt.Printf("%-16s %-5s %-5s %-5s %-8s %-9s %-9s %-9s %-9s %-9s %-9s\n",
				a.Name, a.Class, yn(a.Safe), yn(a.ASCY), yn(a.Ordered),
				nf(c.NativeUpdate), nf(c.NativeGetOrInsert),
				nf(c.NativeForEach), nf(c.NativeRange), nf(c.NativeSearchBatch), ws)
		}
	}
	fmt.Println()
	fmt.Println("every algorithm serves the whole surface: Update/GetOrInsert/ForEach via core.Extend,")
	fmt.Println("Range/Min/Max via core.OrderedOf (sorted families natively, hash tables by snapshot+sort),")
	fmt.Println("SearchBatch via core.BatcherOf (recycling/sharded structures amortize natively);")
	fmt.Println("wirescan is how `ascyserve -ordered` serves mrange: in-place traversal vs per-scan snapshot+sort")
}

// describeAlgorithm prints one registry entry in detail.
func describeAlgorithm(name string) error {
	a, ok := core.Get(name)
	if !ok {
		return fmt.Errorf("ascybench: unknown algorithm %q (run `ascybench list`)", name)
	}
	c := a.Caps()
	fmt.Printf("%s\n  %s\n", a.Name, a.Desc)
	fmt.Printf("  structure:  %s\n", a.Structure)
	fmt.Printf("  class:      %s\n", a.Class)
	fmt.Printf("  safe:       %v", a.Safe)
	if !a.Safe {
		fmt.Printf("  (async upper bound: run unsynchronized, deliberately incorrect)")
	}
	fmt.Println()
	fmt.Printf("  ascy:       %v\n", a.ASCY)
	fmt.Printf("  ordered:    %v\n", a.Ordered)
	nf := func(native bool) string {
		if native {
			return "native"
		}
		return "fallback (core.Extend / core.OrderedOf)"
	}
	fmt.Printf("  update:      %s\n", nf(c.NativeUpdate))
	fmt.Printf("  getorinsert: %s\n", nf(c.NativeGetOrInsert))
	fmt.Printf("  foreach:     %s\n", nf(c.NativeForEach))
	fmt.Printf("  range:       %s\n", nf(c.NativeRange))
	fmt.Printf("  searchbatch: %s\n", nf(c.NativeSearchBatch))
	if c.NativeRange {
		fmt.Printf("  wire-scan:   native (`ascyserve -ordered` mrange traverses the structure in place)\n")
	} else {
		fmt.Printf("  wire-scan:   snapshot+sort (`ascyserve -ordered` mrange works, but each scan pays O(shard); prefer a sorted structure)\n")
	}
	return nil
}
